//! The functional (architectural) machine.
//!
//! [`Machine`] executes programs exactly as a DISE-enabled processor would
//! at the architectural level: every fetched instruction is inspected by
//! the attached [`DiseEngine`]; triggers are macro-expanded and their
//! replacement sequences executed under the PC:DISEPC two-level control
//! model (paper §2.1):
//!
//! * every dynamic instruction carries a `(PC, DISEPC)` pair; precise state
//!   is defined at those boundaries, so execution can be interrupted
//!   mid-sequence and resumed at the same `(PC, DISEPC)`;
//! * DISE-internal branches move the DISEPC only;
//! * application branches inside replacement sequences leave the sequence
//!   when taken (effectively predicted not-taken);
//! * one dynamic sequence can never jump into the middle of another.
//!
//! The machine also expands 2-byte codewords through a [`DedicatedDict`],
//! modeling the dedicated decoder-based decompressor the paper compares
//! against (§4.2).

use crate::block::{self, BlockCache, BlockStats, GroupKind};
use crate::mem::Memory;
use crate::{Result, SimError};
use dise_core::{DiseEngine, Expansion};
use dise_isa::{Inst, Op, OpClass, Predecode, Program, Reg, TextItem};

/// The dictionary of a dedicated hardware decompressor: entry `i` is the
/// instruction sequence that a 2-byte codeword with index `i` expands to.
///
/// Entries live in one dense arena with fixed-stride slots (the stride is
/// the longest entry), so expanding a codeword is a single bounds-checked
/// slice of contiguous memory — no per-entry allocation, no pointer
/// chase — mirroring the fixed-width-copy layout bounded-length
/// dictionary compressors use for fast decompression.
#[derive(Debug, Clone, Default)]
pub struct DedicatedDict {
    /// `lens.len() * stride` instructions; entry `i` occupies
    /// `ops[i*stride..i*stride + lens[i]]`, the slack is NOPs.
    ops: Vec<Inst>,
    /// Real length of each entry.
    lens: Vec<u8>,
    /// Slot stride in instructions (the longest entry; 0 when empty).
    stride: usize,
}

impl DedicatedDict {
    /// Creates a dictionary from entries, packing them into the arena.
    pub fn new(entries: Vec<Vec<Inst>>) -> DedicatedDict {
        let stride = entries.iter().map(Vec::len).max().unwrap_or(0);
        let mut ops = Vec::with_capacity(entries.len() * stride);
        let mut lens = Vec::with_capacity(entries.len());
        for entry in &entries {
            debug_assert!(u8::try_from(entry.len()).is_ok(), "entry too long");
            lens.push(entry.len() as u8);
            ops.extend_from_slice(entry);
            ops.resize(ops.len() + stride - entry.len(), Inst::nop());
        }
        DedicatedDict { ops, lens, stride }
    }

    /// The sequence for codeword index `ix`.
    pub fn get(&self, ix: u16) -> Option<&[Inst]> {
        let len = *self.lens.get(ix as usize)? as usize;
        let at = ix as usize * self.stride;
        Some(&self.ops[at..at + len])
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.lens.len()
    }

    /// True if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.lens.is_empty()
    }

    /// Arena slot stride in instructions (the longest entry).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total dictionary size in bytes (4 bytes per instruction — entries
    /// are unparameterized; arena slack is not counted).
    pub fn size_bytes(&self) -> u64 {
        self.lens.iter().map(|&l| l as u64 * 4).sum()
    }
}

/// Machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Stack size in bytes; SP starts at the top of the stack segment.
    pub stack_size: u64,
    /// Use the predecoded-text fast path (and, when an engine is attached,
    /// its memoized inspect/instantiate entry points). Purely a
    /// simulation-speed knob: results, statistics, and error behavior are
    /// bit-identical with it off.
    pub fast_path: bool,
    /// Use the translated-execution block cache in [`Machine::run`]
    /// (see [`crate::block`]): basic blocks are translated once into flat
    /// µop buffers — DISE expansions inlined, operands pre-resolved — and
    /// executed directly, falling back to per-instruction stepping at
    /// block exits, faults, and unresolved control flow. Requires
    /// `fast_path` (blocks are built over the predecode table). Like
    /// `fast_path`, purely a speed knob: results, statistics, and error
    /// behavior are bit-identical with it off. Defaults to the
    /// `DISE_BLOCK_CACHE` environment setting (`on` unless set to `off`).
    pub block_cache: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            stack_size: 1 << 20,
            fast_path: true,
            block_cache: block_cache_env(),
        }
    }
}

impl MachineConfig {
    /// Disables the fast path (predecode + engine memoization + block
    /// translation) — used by differential tests and honest baseline
    /// measurements.
    pub fn slow_path(mut self) -> MachineConfig {
        self.fast_path = false;
        self.block_cache = false;
        self
    }
}

/// Parses a `DISE_BLOCK_CACHE` setting: `"on"` enables the translated-
/// execution block cache, `"off"` disables it (forcing per-instruction
/// interpretation in [`Machine::run`]).
///
/// # Errors
///
/// Any other value is rejected with an actionable message.
pub fn parse_block_cache(v: &str) -> std::result::Result<bool, String> {
    match v {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err(format!(
            "DISE_BLOCK_CACHE must be \"on\" or \"off\", got {v:?}; unset it to use the default (on)"
        )),
    }
}

/// The process-wide `DISE_BLOCK_CACHE` default (read once). Panics with
/// the [`parse_block_cache`] message on an invalid setting — a silently
/// ignored typo would miscredit every benchmark run after it.
fn block_cache_env() -> bool {
    static ENV_GATE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENV_GATE.get_or_init(|| match std::env::var("DISE_BLOCK_CACHE") {
        Ok(v) => match parse_block_cache(&v) {
            Ok(enabled) => enabled,
            Err(why) => panic!("{why}"),
        },
        Err(_) => true,
    })
}

/// What kind of control transfer a retired instruction performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctrl {
    Next,
    AppJump(u64),
    DiseJump(u8),
    Halt,
}

/// Why [`Machine::exec_block`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockExit {
    /// Control left the block at a fetch boundary — look up the next
    /// block at the (already updated) PC.
    Chain,
    /// Fuel ran out or the machine halted; `(PC, DISEPC, exp)` carry the
    /// exact resume state.
    Suspend,
    /// Execution must continue on the per-instruction path (defensive
    /// divergence escape).
    Fallback,
}

/// Everything the timing model needs to know about one retired dynamic
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepInfo {
    /// Application PC (the trigger's PC for replacement instructions).
    pub pc: u64,
    /// Offset within the replacement sequence (0 for the first instruction
    /// and for ordinary application instructions).
    pub disepc: u8,
    /// The executed instruction.
    pub inst: Inst,
    /// True for instructions produced by expansion (DISE RT or dedicated
    /// dictionary) — these consume pipeline slots but are not fetched from
    /// the I-cache.
    pub is_replacement: bool,
    /// True when this step begins a new application fetch (probe the
    /// I-cache for `fetch_size` bytes at `pc`).
    pub first_of_fetch: bool,
    /// Size in bytes of the fetched item (4, or 2 for short codewords).
    pub fetch_size: u64,
    /// Length of the expansion that began here (1 when not expanded); valid
    /// when `first_of_fetch`.
    pub expansion_len: u8,
    /// An expansion began at this step (for the stall-per-expansion cost
    /// model of Figure 6).
    pub expanded: bool,
    /// For application control transfers: whether it was taken.
    pub taken: Option<bool>,
    /// Taken-branch target.
    pub target: Option<u64>,
    /// This instruction is a taken DISE-internal branch (always a redirect:
    /// DISE branches are not predicted, §2.2).
    pub dise_taken: bool,
    /// This application control transfer is eligible for branch prediction
    /// (ordinary instructions and trigger branches; non-trigger replacement
    /// branches are suppressed from prediction, §2.2).
    pub predicted: bool,
    /// Effective address for memory operations.
    pub mem_addr: Option<u64>,
    /// DISE PT/RT miss stall cycles charged at this step (pipeline flush +
    /// fill).
    pub dise_stall: u64,
}

impl Default for StepInfo {
    /// A placeholder report (a retired `nop` at PC 0) for callers that
    /// preallocate the [`Machine::step_into`] output slot.
    fn default() -> StepInfo {
        StepInfo {
            pc: 0,
            disepc: 0,
            inst: Inst::nop(),
            is_replacement: false,
            first_of_fetch: false,
            fetch_size: 4,
            expansion_len: 1,
            expanded: false,
            taken: None,
            target: None,
            dise_taken: false,
            predicted: false,
            mem_addr: None,
            dise_stall: 0,
        }
    }
}

/// Result of a [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Total dynamic instructions executed (application + replacement).
    pub total_insts: u64,
    /// Application instructions (fetched items) executed.
    pub app_insts: u64,
    /// True if the program executed `halt`.
    pub halted: bool,
}

impl RunResult {
    /// True if the program executed `halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }
}

#[derive(Debug)]
enum ExpState {
    /// An unexpanded instruction.
    Single(Inst),
    /// A DISE expansion in progress. `raw` is the trigger's encoded word
    /// when it came off the predecode table (keys the engine's
    /// instantiation memo); `None` on the byte-accurate fallback path.
    Dise {
        id: dise_core::ReplacementId,
        len: u8,
        trigger: Inst,
        raw: Option<u32>,
    },
    /// A dedicated-decompressor expansion in progress (dictionary index).
    Dedicated { ix: u16 },
}

/// Parsed, fingerprint-validated mutable state of a machine (see
/// [`Machine::read_state`]); applied with [`Machine::apply_state`].
#[derive(Debug)]
pub(crate) struct MachineState {
    regs: [u64; 64],
    pc: u64,
    disepc: u8,
    halted: bool,
    total_insts: u64,
    app_insts: u64,
    exp: Option<ExpState>,
    mem: Memory,
    engine: Option<dise_core::EngineState>,
}

/// The functional machine. See the module docs.
#[derive(Debug)]
pub struct Machine {
    /// Register file, padded to a power of two so `Reg::index()` (< 48 by
    /// construction) can be masked instead of bounds-checked on the hot
    /// path. Slots 48–63 are never addressed.
    regs: [u64; 64],
    /// Data memory (text is fetched from the program image).
    pub mem: Memory,
    program: Program,
    /// Per-byte-offset decode of the text segment (`None` when the fast
    /// path is disabled). The program is immutable after load, so this
    /// never goes stale; it is `Arc`-shared with every other machine in
    /// the process simulating the same image (see [`crate::arena`]).
    predecode: Option<std::sync::Arc<Predecode>>,
    pc: u64,
    disepc: u8,
    exp: Option<ExpState>,
    engine: Option<DiseEngine>,
    dedicated: Option<DedicatedDict>,
    halted: bool,
    total_insts: u64,
    app_insts: u64,
    /// Whether [`Machine::run`] may use the translated-execution block
    /// cache (config gate; the cache itself is built lazily).
    block_cache: bool,
    /// The translated-block cache, built on first use and dropped when an
    /// engine or dictionary is (re)attached — translations bake their
    /// outcomes.
    blocks: Option<BlockCache>,
}

impl Machine {
    /// Loads a program with the default configuration: data segment
    /// initialized, SP at the top of the stack segment.
    pub fn load(program: &Program) -> Machine {
        Machine::with_config(program, MachineConfig::default())
    }

    /// Loads a program with an explicit configuration.
    pub fn with_config(program: &Program, config: MachineConfig) -> Machine {
        let mut mem = Memory::new();
        mem.store_bytes(program.data_base, &program.data_init);
        let mut regs = [0u64; 64];
        regs[Reg::SP.index()] =
            Program::segment_base(Program::STACK_SEGMENT) + config.stack_size;
        Machine {
            regs,
            mem,
            pc: program.entry,
            disepc: 0,
            exp: None,
            engine: None,
            dedicated: None,
            halted: false,
            total_insts: 0,
            app_insts: 0,
            block_cache: config.fast_path && config.block_cache,
            blocks: None,
            predecode: config.fast_path.then(|| crate::arena::predecode_for(program)),
            program: program.clone(),
        }
    }

    /// Attaches a DISE engine; every subsequently fetched instruction is
    /// inspected by it. Fast-path engines without a shared frontend of
    /// their own are upgraded from the process arena (a pure
    /// constructional change — results are bit-identical; see
    /// [`crate::arena`]), so every construction path in the workspace
    /// shares automatically.
    pub fn attach_engine(&mut self, mut engine: DiseEngine) {
        if engine.config().fast_path
            && engine.shared_frontend().is_none()
            && self.predecode.is_some()
            && crate::arena::share_enabled()
        {
            engine.set_shared_frontend(crate::arena::frontend_for(
                &self.program,
                engine.controller(),
            ));
        }
        // Blocks translated against the previous engine (or none) baked
        // its outcomes; drop them.
        self.blocks = None;
        self.engine = Some(engine);
    }

    /// Attaches a dedicated-decompressor dictionary for 2-byte codewords.
    pub fn attach_dedicated(&mut self, dict: DedicatedDict) {
        // Blocks baked against the previous dictionary are stale.
        self.blocks = None;
        self.dedicated = Some(dict);
    }

    /// The attached engine, if any.
    pub fn engine(&self) -> Option<&DiseEngine> {
        self.engine.as_ref()
    }

    /// Mutable access to the attached engine (e.g. to reset statistics).
    pub fn engine_mut(&mut self) -> Option<&mut DiseEngine> {
        self.engine.as_mut()
    }

    /// Block-cache telemetry (hits / misses / invalidations / fallbacks).
    /// All zeros when the cache is disabled or was never exercised.
    pub fn block_stats(&self) -> BlockStats {
        self.blocks.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// Serializes the machine's mutable state (see [`crate::snapshot`]).
    /// The program, production set and dedicated dictionary are recorded
    /// as fingerprints only; the predecode table and block cache are
    /// derived state and not recorded at all.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::Writer) {
        w.u64(crate::arena::program_fingerprint(&self.program));
        match &self.engine {
            Some(e) => {
                w.bool(true);
                w.u64(crate::arena::controller_fingerprint(e.controller()));
            }
            None => w.bool(false),
        }
        match &self.dedicated {
            Some(d) => {
                w.bool(true);
                w.u64(crate::arena::debug_fingerprint(d));
            }
            None => w.bool(false),
        }
        for &v in &self.regs {
            w.u64(v);
        }
        w.u64(self.pc);
        w.u8(self.disepc);
        w.bool(self.halted);
        w.u64(self.total_insts);
        w.u64(self.app_insts);
        match &self.exp {
            None => w.u8(0),
            Some(ExpState::Single(inst)) => {
                w.u8(1);
                crate::snapshot::write_inst(w, inst);
            }
            Some(ExpState::Dise {
                id,
                len,
                trigger,
                raw,
            }) => {
                w.u8(2);
                w.u32(*id);
                w.u8(*len);
                crate::snapshot::write_inst(w, trigger);
                match raw {
                    Some(word) => {
                        w.bool(true);
                        w.u32(*word);
                    }
                    None => w.bool(false),
                }
            }
            Some(ExpState::Dedicated { ix }) => {
                w.u8(3);
                w.u32(*ix as u32);
            }
        }
        self.mem.save_state(w);
        if let Some(e) = &self.engine {
            crate::snapshot::write_engine_state(w, &e.export_state());
        }
    }

    /// Parses a [`Machine::save_state`] section, checking the recorded
    /// fingerprints against this machine's scenario. Mutates nothing —
    /// the caller applies the returned state only once the whole snapshot
    /// has validated.
    pub(crate) fn read_state(
        &self,
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<MachineState> {
        crate::snapshot::check_fingerprint(
            "program image",
            r.u64()?,
            crate::arena::program_fingerprint(&self.program),
        )?;
        let snap_engine = r.bool()?;
        match (snap_engine, &self.engine) {
            (true, Some(e)) => crate::snapshot::check_fingerprint(
                "production set",
                r.u64()?,
                crate::arena::controller_fingerprint(e.controller()),
            )?,
            (false, None) => {}
            (true, None) => {
                return Err(SimError::Snapshot(
                    "the snapshot was taken with a DISE engine attached but the restore \
                     target has none; attach the identical engine before restoring"
                        .into(),
                ))
            }
            (false, Some(_)) => {
                return Err(SimError::Snapshot(
                    "the snapshot was taken without a DISE engine but the restore target \
                     has one attached; restore into an engine-less machine"
                        .into(),
                ))
            }
        }
        let snap_dedicated = r.bool()?;
        match (snap_dedicated, &self.dedicated) {
            (true, Some(d)) => crate::snapshot::check_fingerprint(
                "dedicated dictionary",
                r.u64()?,
                crate::arena::debug_fingerprint(d),
            )?,
            (false, None) => {}
            (true, None) => {
                return Err(SimError::Snapshot(
                    "the snapshot was taken with a dedicated dictionary attached but the \
                     restore target has none; attach the identical dictionary first"
                        .into(),
                ))
            }
            (false, Some(_)) => {
                return Err(SimError::Snapshot(
                    "the snapshot was taken without a dedicated dictionary but the restore \
                     target has one attached; restore into a machine without one"
                        .into(),
                ))
            }
        }
        let mut regs = [0u64; 64];
        for v in regs.iter_mut() {
            *v = r.u64()?;
        }
        let pc = r.u64()?;
        let disepc = r.u8()?;
        let halted = r.bool()?;
        let total_insts = r.u64()?;
        let app_insts = r.u64()?;
        let exp = match r.u8()? {
            0 => None,
            1 => Some(ExpState::Single(crate::snapshot::read_inst(r)?)),
            2 => {
                let id = r.u32()?;
                let len = r.u8()?;
                let trigger = crate::snapshot::read_inst(r)?;
                let raw = if r.bool()? { Some(r.u32()?) } else { None };
                Some(ExpState::Dise {
                    id,
                    len,
                    trigger,
                    raw,
                })
            }
            3 => {
                let ix = r.u32()?;
                let ix = u16::try_from(ix).map_err(|_| {
                    SimError::Snapshot(format!(
                        "snapshot corrupt: dedicated codeword index {ix} exceeds u16"
                    ))
                })?;
                Some(ExpState::Dedicated { ix })
            }
            other => {
                return Err(SimError::Snapshot(format!(
                    "snapshot corrupt: unknown expansion-state tag {other}"
                )))
            }
        };
        let mem = Memory::read_state(r)?;
        let engine = snap_engine
            .then(|| crate::snapshot::read_engine_state(r))
            .transpose()?;
        Ok(MachineState {
            regs,
            pc,
            disepc,
            halted,
            total_insts,
            app_insts,
            exp,
            mem,
            engine,
        })
    }

    /// Installs a parsed state. The engine import validates before it
    /// mutates and everything after it is infallible, so a failure here
    /// leaves the machine untouched. The block cache is dropped — the
    /// engine bumps its generation on import, so stale translations
    /// cannot survive even if one were kept.
    pub(crate) fn apply_state(&mut self, state: MachineState) -> Result<()> {
        if let Some(engine_state) = &state.engine {
            self.engine
                .as_mut()
                .expect("engine presence was validated in read_state")
                .import_state(engine_state)
                .map_err(|e| SimError::Snapshot(format!("engine section rejected: {e}")))?;
        }
        self.regs = state.regs;
        self.pc = state.pc;
        self.disepc = state.disepc;
        self.halted = state.halted;
        self.total_insts = state.total_insts;
        self.app_insts = state.app_insts;
        self.exp = state.exp;
        self.mem = state.mem;
        self.blocks = None;
        Ok(())
    }

    /// Reads a register (the zero register reads 0).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() & 63]
        }
    }

    /// Writes a register (writes to the zero register are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index() & 63] = value;
        }
    }

    /// The current `(PC, DISEPC)` pair.
    pub fn pc(&self) -> (u64, u8) {
        (self.pc, self.disepc)
    }

    /// Overrides the PC, resetting any in-flight expansion and clearing a
    /// halt — the hook an external "OS handler" uses to restart execution
    /// (e.g. a DSM protocol handler resuming a trapped access).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
        self.disepc = 0;
        self.exp = None;
        self.halted = false;
    }

    /// True once `halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Counts of executed instructions `(total, application)`.
    pub fn inst_counts(&self) -> (u64, u64) {
        (self.total_insts, self.app_insts)
    }

    /// The loaded program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Simulates an interrupt at the current `(PC, DISEPC)`: in-flight
    /// expansion state is discarded exactly as a pipeline flush would, and
    /// the next [`Machine::step`] re-fetches PC and re-expands starting at
    /// DISEPC (precise-state model, §2.1).
    pub fn interrupt(&mut self) {
        self.exp = None;
    }

    /// Executes one dynamic instruction. Returns `None` once halted.
    ///
    /// # Errors
    ///
    /// Fails on fetch errors, unexpandable codewords, or engine errors.
    pub fn step(&mut self) -> Result<Option<StepInfo>> {
        let mut out = StepInfo::default();
        Ok(self.step_inner::<true>(&mut out)?.then_some(out))
    }

    /// Executes one dynamic instruction, filling a caller-owned report in
    /// place. Returns `false` once halted (leaving `out` untouched).
    ///
    /// Timing-oriented variant of [`Machine::step`]: the ~90-byte
    /// [`StepInfo`] is written straight into the caller's slot instead of
    /// being moved through `Result<Option<StepInfo>>` on every retired
    /// instruction — the cycle-level simulator's oracle loop reuses one
    /// slot for an entire run.
    ///
    /// # Errors
    ///
    /// Fails on fetch errors, unexpandable codewords, or engine errors.
    pub fn step_into(&mut self, out: &mut StepInfo) -> Result<bool> {
        self.step_inner::<true>(out)
    }

    /// The step body, monomorphized on whether the caller wants a
    /// [`StepInfo`]. [`Machine::run`] only needs halt/continue, so its
    /// instantiation drops the report assembly (and everything feeding
    /// only it) at compile time; execution is otherwise identical.
    /// Returns `false` once halted; `out` is filled iff `INFO` and a step
    /// retired.
    fn step_inner<const INFO: bool>(&mut self, out: &mut StepInfo) -> Result<bool> {
        if self.halted {
            return Ok(false);
        }
        let mut dise_stall = 0u64;
        let mut expanded = false;
        let first_of_fetch = self.exp.is_none() && self.disepc == 0;

        // Establish the expansion state if needed (initial fetch, or
        // re-fetch after an interrupt mid-sequence).
        if self.exp.is_none() {
            // Fast path: the predecoded text table. Misses (no table, or an
            // undecodable/out-of-range PC) fall back to the byte-accurate
            // `fetch`, which either succeeds identically or produces the
            // exact architectural error.
            let (item, raw) = match self.predecode.as_ref().and_then(|p| p.get(self.pc)) {
                Some(pi) => (pi.item, Some(pi.raw)),
                None => (self.program.fetch(self.pc)?, None),
            };
            self.exp = Some(match item {
                TextItem::Short(ix) => {
                    let dict = self.dedicated.as_ref().ok_or(SimError::BadShortCodeword {
                        pc: self.pc,
                        index: ix,
                    })?;
                    if dict.get(ix).is_none() {
                        return Err(SimError::BadShortCodeword {
                            pc: self.pc,
                            index: ix,
                        });
                    }
                    ExpState::Dedicated { ix }
                }
                TextItem::Inst(inst) => {
                    if let Some(engine) = self.engine.as_mut() {
                        loop {
                            let outcome = match raw {
                                Some(raw) => engine.inspect_decoded(&inst, raw),
                                None => engine.inspect(&inst),
                            };
                            match outcome {
                                Expansion::Miss { penalty, .. } => dise_stall += penalty,
                                Expansion::Fault { .. } => {
                                    return Err(SimError::UnexpandedCodeword { pc: self.pc })
                                }
                                Expansion::None => {
                                    if inst.op.is_codeword() {
                                        return Err(SimError::UnexpandedCodeword {
                                            pc: self.pc,
                                        });
                                    }
                                    break ExpState::Single(inst);
                                }
                                Expansion::Expand { id, len } => {
                                    expanded = self.disepc == 0;
                                    break ExpState::Dise {
                                        id,
                                        len,
                                        trigger: inst,
                                        raw,
                                    };
                                }
                            }
                        }
                    } else if inst.op.is_codeword() {
                        return Err(SimError::UnexpandedCodeword { pc: self.pc });
                    } else {
                        ExpState::Single(inst)
                    }
                }
            });
        }

        // Produce the current dynamic instruction.
        let (inst, len, fetch_size, is_replacement, trigger_inst) = match self
            .exp
            .as_ref()
            .expect("established above")
        {
            ExpState::Single(i) => (*i, 1u8, 4u64, false, None),
            ExpState::Dise {
                id,
                len,
                trigger,
                raw,
            } => {
                let id = *id;
                let len = *len;
                let trigger = *trigger;
                let raw = *raw;
                let engine = self.engine.as_mut().expect("Dise expansion needs engine");
                let before = engine.stall_cycles();
                let inst = match raw {
                    Some(raw) => {
                        engine.fetch_replacement_decoded(id, self.disepc, &trigger, raw, self.pc)?
                    }
                    None => engine.fetch_replacement(id, self.disepc, &trigger, self.pc)?,
                };
                dise_stall += engine.stall_cycles() - before;
                (inst, len, 4, true, Some(trigger))
            }
            ExpState::Dedicated { ix } => {
                let insts = self
                    .dedicated
                    .as_ref()
                    .expect("dictionary checked at fetch")
                    .get(*ix)
                    .expect("dictionary checked at fetch");
                let inst = insts[self.disepc as usize];
                (inst, insts.len() as u8, 2, true, None)
            }
        };

        // Execute.
        let (ctrl, mem_addr, taken) = self.exec(inst, fetch_size)?;
        self.total_insts += 1;
        if first_of_fetch {
            self.app_insts += 1;
        }

        // Prediction eligibility: ordinary instructions, the trigger
        // instance (T.INSN), and the *final* instruction of a replacement
        // sequence (it determines the next fetch PC, so the front end
        // predicts it at the trigger's address — this is what makes
        // compressed sequence-terminating branches predictable). Sequence-
        // internal branches are never predicted (§2.2): taken ones
        // redirect, untaken ones are free.
        if INFO {
            let predicted = !is_replacement
                || trigger_inst == Some(inst)
                || self.disepc + 1 == len;
            *out = StepInfo {
                pc: self.pc,
                disepc: self.disepc,
                inst,
                is_replacement: is_replacement && len > 1,
                first_of_fetch,
                fetch_size,
                expansion_len: len,
                expanded,
                taken,
                target: match ctrl {
                    Ctrl::AppJump(t) => Some(t),
                    _ => None,
                },
                dise_taken: matches!(ctrl, Ctrl::DiseJump(_)),
                predicted,
                mem_addr,
                dise_stall,
            };
        }

        // Advance (PC, DISEPC).
        match ctrl {
            Ctrl::Halt => {
                self.halted = true;
                self.exp = None;
            }
            Ctrl::AppJump(t) => {
                self.pc = t;
                self.disepc = 0;
                self.exp = None;
            }
            Ctrl::DiseJump(ix) => {
                self.disepc = ix;
            }
            Ctrl::Next => {
                if self.disepc + 1 < len {
                    self.disepc += 1;
                } else {
                    self.pc += fetch_size;
                    self.disepc = 0;
                    self.exp = None;
                }
            }
        }
        Ok(true)
    }

    /// Runs until halt or `max_steps` dynamic instructions.
    ///
    /// When the block cache is enabled (the default), execution proceeds
    /// through translated basic blocks wherever the machine sits at a
    /// fetch boundary (`exp == None`, `DISEPC == 0`), dropping to
    /// [`Machine::step_into`]-equivalent interpretation everywhere else.
    /// Results, statistics, error behavior, and the `(PC, DISEPC)` state
    /// left behind on fuel exhaustion are bit-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates step errors; returns [`SimError::OutOfFuel`] if the
    /// budget is exhausted first.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult> {
        let mut out = StepInfo::default();
        let mut fuel = max_steps;
        let use_blocks = self.block_cache && self.predecode.is_some();
        loop {
            if self.halted {
                return Ok(RunResult {
                    total_insts: self.total_insts,
                    app_insts: self.app_insts,
                    halted: true,
                });
            }
            if fuel == 0 {
                return Err(SimError::OutOfFuel);
            }
            if use_blocks
                && self.exp.is_none()
                && self.disepc == 0
                && self.run_blocks(&mut fuel)?
            {
                continue;
            }
            // Interpret one step: mid-sequence resume points, and PCs the
            // translator could not bake.
            if self.step_inner::<false>(&mut out)? {
                fuel -= 1;
            }
        }
    }

    /// Executes translated blocks starting at the current PC until fuel
    /// runs out, the machine halts or suspends mid-sequence, or control
    /// reaches a PC with nothing bakeable. Returns `Ok(false)` when the
    /// caller should interpret one step before retrying the block path
    /// (the progress guarantee that prevents a fallback-marker livelock).
    fn run_blocks(&mut self, fuel: &mut u64) -> Result<bool> {
        let mut cache = match self.blocks.take() {
            Some(c) => c,
            None => BlockCache::new(self.predecode.as_ref().expect("gated on predecode")),
        };
        let r = self.run_blocks_inner(&mut cache, fuel);
        self.blocks = Some(cache);
        r
    }

    fn run_blocks_inner(&mut self, cache: &mut BlockCache, fuel: &mut u64) -> Result<bool> {
        loop {
            if *fuel == 0 || self.halted {
                return Ok(true);
            }
            debug_assert!(self.exp.is_none() && self.disepc == 0);
            let generation = self.engine.as_ref().map_or(0, |e| e.generation());
            let Some(slot) = cache.slot(self.pc) else {
                // Outside the text segment: let `step_inner` produce the
                // exact fetch error.
                return Ok(false);
            };
            match cache.get(slot) {
                Some(b) if b.generation == generation => cache.stats.hits += 1,
                existing => {
                    if existing.is_some() {
                        cache.stats.invalidations += 1;
                    }
                    cache.stats.misses += 1;
                    let b = block::translate(
                        self.predecode.as_ref().expect("gated on predecode"),
                        self.engine.as_ref(),
                        self.dedicated.as_ref(),
                        self.pc,
                        generation,
                    );
                    cache.install(slot, b);
                }
            }
            if cache.get(slot).expect("just installed").groups.is_empty() {
                cache.stats.fallbacks += 1;
                return Ok(false);
            }
            let (blk, stats) = cache.get_mut(slot).expect("just installed");
            match self.exec_block(blk, stats, fuel)? {
                BlockExit::Chain => {}
                BlockExit::Suspend => return Ok(true),
                BlockExit::Fallback => return Ok(false),
            }
        }
    }

    /// Executes one translated block. Wrapper flushing the pass-through
    /// inspection credit (the slow path counts one `inspected` per fetched
    /// instruction; the block path counts locally and flushes on every
    /// exit, including errors).
    fn exec_block(
        &mut self,
        blk: &mut block::Block,
        stats: &mut BlockStats,
        fuel: &mut u64,
    ) -> Result<BlockExit> {
        let count_inspected = self.engine.is_some();
        let mut inspected = 0u64;
        let r = self.exec_block_inner(blk, stats, fuel, count_inspected, &mut inspected);
        if inspected > 0 {
            self.engine
                .as_mut()
                .expect("counted only with an engine")
                .add_inspected(inspected);
        }
        r
    }

    fn exec_block_inner(
        &mut self,
        blk: &mut block::Block,
        stats: &mut BlockStats,
        fuel: &mut u64,
        count_inspected: bool,
        inspected: &mut u64,
    ) -> Result<BlockExit> {
        let mut gi = 0usize;
        while gi < blk.groups.len() {
            if *fuel == 0 {
                // Clean fetch boundary: state is exactly the slow path's
                // after the same number of retired instructions.
                return Ok(BlockExit::Suspend);
            }
            let g = blk.groups[gi];
            debug_assert_eq!(self.pc, g.pc);
            // Straight-segment fast path: a translate-time-marked run of
            // wholly-straight groups retires as one loop over its
            // contiguous µop span. Every µop is plain dataflow (`exec`
            // provably returns `Ctrl::Next`, cannot fault, never
            // observes the PC), so the PC/fuel/counter updates and the
            // engine's inspection statistics collapse to one batched
            // update each from the segment's precomputed totals, and the
            // loop body is nothing but execution. Requires a statically
            // conflict-free RT when expansions are present (stamps and
            // key re-verifies are then provably vacuous — see
            // [`DiseEngine::rt_static`]) and every spanned touch plan
            // recorded; otherwise the per-group paths below run the
            // segment's groups one at a time, exactly as before.
            if g.seg != 0 {
                let seg = blk.segs[g.seg as usize - 1];
                if *fuel >= seg.uops as u64
                    && (seg.expands == 0
                        || self.engine.as_ref().is_some_and(|e| e.rt_static()))
                    && blk.seg_plans_ok(gi, seg.groups as usize)
                {
                    stats.seg_groups += seg.groups as u64;
                    if seg.expands > 0 {
                        stats.planned_groups += seg.expands as u64;
                        self.engine
                            .as_mut()
                            .expect("expand groups need an engine")
                            .block_segment_enter(seg.expands as u64, seg.repl);
                    }
                    if count_inspected {
                        *inspected += seg.singles as u64;
                    }
                    *fuel -= seg.uops as u64;
                    self.total_insts += seg.uops as u64;
                    self.app_insts += seg.groups as u64;
                    let base = g.first as usize;
                    for i in 0..seg.uops as usize {
                        // Plain-dataflow µops never read the item size
                        // (only control transfers compute a next PC).
                        match self.exec_fast(blk.ops[base + i], 4) {
                            Ok(ctrl) => {
                                debug_assert!(matches!(ctrl, Ctrl::Next), "wholly straight")
                            }
                            Err(_) => unreachable!("segment µops are plain dataflow"),
                        }
                    }
                    self.pc += seg.advance;
                    gi += seg.groups as usize;
                    continue;
                }
            }
            match g.kind {
                GroupKind::Single { run } => {
                    // A marked run of straight singles retires in one
                    // batched loop: every instruction provably produces
                    // `Ctrl::Next` without observing the PC, so the
                    // PC/fuel/counter updates collapse to one per run and
                    // the per-group dispatch disappears. (The defensive
                    // unwind mirrors the group batches; straight singles
                    // cannot actually fault.)
                    let run = run as u64;
                    if run >= 1 && *fuel >= run {
                        if count_inspected {
                            *inspected += run;
                        }
                        *fuel -= run;
                        self.total_insts += run;
                        self.app_insts += run;
                        let first = g.first as usize;
                        for i in 0..run as usize {
                            match self.exec_fast(blk.ops[first + i], g.fetch_size) {
                                Ok(ctrl) => {
                                    debug_assert!(matches!(ctrl, Ctrl::Next), "straight single");
                                }
                                Err(e) => {
                                    let rest = run - i as u64;
                                    if count_inspected {
                                        *inspected -= rest - 1;
                                    }
                                    *fuel += rest;
                                    self.total_insts -= rest;
                                    self.app_insts -= rest;
                                    self.pc += 4 * i as u64;
                                    return Err(e);
                                }
                            }
                        }
                        self.pc += 4 * run;
                        gi += run as usize;
                        continue;
                    }
                    let inst = blk.ops[g.first as usize];
                    if count_inspected {
                        *inspected += 1;
                    }
                    let ctrl = self.exec_fast(inst, g.fetch_size)?;
                    *fuel -= 1;
                    self.total_insts += 1;
                    self.app_insts += 1;
                    match ctrl {
                        Ctrl::Next => {
                            self.pc += g.fetch_size;
                            gi += 1;
                        }
                        Ctrl::AppJump(t) => {
                            self.pc = t;
                            return Ok(BlockExit::Chain);
                        }
                        Ctrl::Halt => {
                            self.halted = true;
                            self.exp = None;
                            return Ok(BlockExit::Suspend);
                        }
                        Ctrl::DiseJump(_) => {
                            unreachable!("translator rejects bare DISE branches")
                        }
                    }
                }
                GroupKind::Expand {
                    id,
                    len,
                    trigger,
                    raw,
                    solo,
                    straight,
                } => {
                    let engine = self.engine.as_mut().expect("Expand group needs engine");
                    let base = g.first as usize;
                    // Arena fast path: a straight group (no DISE branches,
                    // no interior control) whose recorded touch plan fully
                    // verifies replays the slow path's reference string as
                    // an upfront read-only verify followed by unchecked
                    // stamps in per-µop order — bit-identical RT state,
                    // one branchless run over the arena-baked µops. Any
                    // verify miss falls through to the general path below,
                    // which re-searches and re-records exactly as before.
                    if straight && *fuel >= len as u64 {
                        let plans = &blk.plan[base..base + len as usize];
                        // On a statically conflict-free RT
                        // ([`DiseEngine::rt_static`]) a recorded plan
                        // slot provably still holds its entry — no fill
                        // can evict within a generation, and generation
                        // bumps retranslate the block — so the key
                        // compares are vacuous and the LRU stamps feed a
                        // victim choice that is never made. The replay
                        // then reduces to plan-recorded checks plus the
                        // inspection statistics.
                        let rt_static = engine.rt_static();
                        let verified = plans[0] != 0
                            && if rt_static {
                                solo || plans.iter().all(|&p| p != 0)
                            } else if solo {
                                engine.block_entry_holds(plans[0] - 1, id)
                            } else {
                                engine.block_group_verify(id, plans)
                            };
                        if verified {
                            stats.planned_groups += 1;
                            // The whole reference string replays before
                            // the µops run (stamps commute with straight
                            // execution), and the counters batch to one
                            // update (unwound on the cold error path), so
                            // the loop below is pure execution.
                            if rt_static {
                                engine.block_group_enter_static(len);
                            } else if solo {
                                engine.block_group_enter(plans[0] - 1, len);
                            } else {
                                engine.block_group_replay(plans, len);
                            }
                            *fuel -= len as u64;
                            self.total_insts += len as u64;
                            self.app_insts += 1;
                            // Interior µops of a straight group are
                            // architecturally `Ctrl::Next` (the translator
                            // verified no branch/halt opcodes and no DISE
                            // branches), so only the last µop's control
                            // needs dispatching.
                            let last = len as usize - 1;
                            for d in 0..last {
                                match self.exec_fast(blk.ops[base + d], g.fetch_size) {
                                    Ok(ctrl) => {
                                        debug_assert!(
                                            matches!(ctrl, Ctrl::Next),
                                            "straight-checked"
                                        );
                                    }
                                    Err(e) => {
                                        self.batch_unwind(fuel, d as u64, len as u64);
                                        return Err(e);
                                    }
                                }
                            }
                            let ctrl = match self.exec_fast(blk.ops[base + last], g.fetch_size) {
                                Ok(ctrl) => ctrl,
                                Err(e) => {
                                    self.batch_unwind(fuel, last as u64, len as u64);
                                    return Err(e);
                                }
                            };
                            match ctrl {
                                Ctrl::Next => {
                                    self.pc += g.fetch_size;
                                    gi += 1;
                                }
                                Ctrl::AppJump(t) => {
                                    self.pc = t;
                                    return Ok(BlockExit::Chain);
                                }
                                Ctrl::Halt => {
                                    self.halted = true;
                                    self.disepc = last as u8;
                                    self.exp = None;
                                    return Ok(BlockExit::Suspend);
                                }
                                Ctrl::DiseJump(_) => {
                                    unreachable!("straight groups have no DISE branches")
                                }
                            }
                            continue;
                        }
                    }
                    // Nonzero plan entries replay their RT reference by
                    // stamping the recorded slot directly — one verify-
                    // compare against the slot's key instead of a set
                    // search. Hints self-validate, so a fill that
                    // replaced the slot just fails the verify and the
                    // pass re-searches (and re-records) below. Entries
                    // are recorded lazily, one per executed µop, so
                    // partially resident or jumpily executed sequences
                    // still plan the µops they actually run.
                    let p = blk.plan[base];
                    if p != 0 && engine.block_expand_stamp(p - 1, id, len) {
                        stats.planned_groups += 1;
                    } else {
                        stats.searched_groups += 1;
                        // Replay the group-entry inspection (`inspect`'s
                        // RT reference and statistics); on RT eviction
                        // model the refill through the live path, exactly
                        // as the slow path's inspect/stall/re-inspect
                        // loop would.
                        match engine.block_expand_hit_slot(id, len) {
                            // `RT_NO_SLOT` wraps to 0 (= unrecorded): a
                            // perfect RT has no slots to stamp, so it
                            // keeps the searching path.
                            Some(slot) => blk.plan[base] = slot.wrapping_add(1),
                            None => loop {
                                match engine.inspect_decoded(&trigger, raw) {
                                    Expansion::Miss { .. } => continue,
                                    Expansion::Expand { id: i2, len: l2 } => {
                                        debug_assert_eq!((i2, l2), (id, len));
                                        break;
                                    }
                                    Expansion::Fault { .. } => {
                                        return Err(SimError::UnexpandedCodeword {
                                            pc: self.pc,
                                        });
                                    }
                                    Expansion::None => {
                                        // A baked outcome diverging under
                                        // an unchanged generation is
                                        // impossible by construction;
                                        // degrade to the interpreter
                                        // rather than guess.
                                        debug_assert!(false, "baked expansion diverged");
                                        return Ok(BlockExit::Fallback);
                                    }
                                }
                            },
                        }
                    }
                    let mut d: u8 = 0;
                    loop {
                        // Per-µop RT reference replay (skipped for
                        // single-block sequences — the entry touch above
                        // already was the whole reference string); on
                        // eviction the live fetch models the refill miss
                        // (and returns the same instruction the
                        // translator baked).
                        let inst = if solo {
                            blk.ops[base + d as usize]
                        } else {
                            let engine =
                                self.engine.as_mut().expect("Expand group needs engine");
                            let p = blk.plan[base + d as usize];
                            if p != 0 && engine.block_replacement_stamp(p - 1, id, d) {
                                blk.ops[base + d as usize]
                            } else if let Some(slot) = engine.block_replacement_hit_slot(id, d)
                            {
                                blk.plan[base + d as usize] = slot.wrapping_add(1);
                                blk.ops[base + d as usize]
                            } else {
                                match engine.fetch_replacement_decoded(id, d, &trigger, raw, g.pc)
                                {
                                    Ok(i) => {
                                        debug_assert_eq!(i, blk.ops[base + d as usize]);
                                        i
                                    }
                                    Err(e) => {
                                        self.disepc = d;
                                        self.exp = Some(ExpState::Dise {
                                            id,
                                            len,
                                            trigger,
                                            raw: Some(raw),
                                        });
                                        return Err(e.into());
                                    }
                                }
                            }
                        };
                        let ctrl = self.exec_fast(inst, g.fetch_size)?;
                        *fuel -= 1;
                        self.total_insts += 1;
                        if d == 0 {
                            self.app_insts += 1;
                        }
                        match ctrl {
                            Ctrl::Next => {
                                if d + 1 < len {
                                    d += 1;
                                    if *fuel == 0 {
                                        self.disepc = d;
                                        self.exp = Some(ExpState::Dise {
                                            id,
                                            len,
                                            trigger,
                                            raw: Some(raw),
                                        });
                                        return Ok(BlockExit::Suspend);
                                    }
                                } else {
                                    self.pc += g.fetch_size;
                                    gi += 1;
                                    break;
                                }
                            }
                            Ctrl::DiseJump(ix) => {
                                debug_assert!(ix < len, "bake-checked target");
                                d = ix;
                                if *fuel == 0 {
                                    self.disepc = d;
                                    self.exp = Some(ExpState::Dise {
                                        id,
                                        len,
                                        trigger,
                                        raw: Some(raw),
                                    });
                                    return Ok(BlockExit::Suspend);
                                }
                            }
                            Ctrl::AppJump(t) => {
                                self.pc = t;
                                return Ok(BlockExit::Chain);
                            }
                            Ctrl::Halt => {
                                // The slow path leaves DISEPC at the halt
                                // site (it only clears `exp`).
                                self.halted = true;
                                self.disepc = d;
                                self.exp = None;
                                return Ok(BlockExit::Suspend);
                            }
                        }
                    }
                }
                GroupKind::Dedicated {
                    ix: dict_ix,
                    len,
                    straight,
                } => {
                    let base = g.first as usize;
                    // Straight dedicated groups batch the same way as
                    // straight expand groups, minus the engine replay
                    // (dedicated expansion never references the RT).
                    if straight && *fuel >= len as u64 {
                        *fuel -= len as u64;
                        self.total_insts += len as u64;
                        self.app_insts += 1;
                        let last = len as usize - 1;
                        for d in 0..last {
                            match self.exec_fast(blk.ops[base + d], g.fetch_size) {
                                Ok(ctrl) => {
                                    debug_assert!(matches!(ctrl, Ctrl::Next), "straight-checked");
                                }
                                Err(e) => {
                                    self.batch_unwind(fuel, d as u64, len as u64);
                                    return Err(e);
                                }
                            }
                        }
                        let ctrl = match self.exec_fast(blk.ops[base + last], g.fetch_size) {
                            Ok(ctrl) => ctrl,
                            Err(e) => {
                                self.batch_unwind(fuel, last as u64, len as u64);
                                return Err(e);
                            }
                        };
                        match ctrl {
                            Ctrl::Next => {
                                self.pc += g.fetch_size;
                                gi += 1;
                            }
                            Ctrl::AppJump(t) => {
                                self.pc = t;
                                return Ok(BlockExit::Chain);
                            }
                            Ctrl::Halt => {
                                self.halted = true;
                                self.disepc = last as u8;
                                self.exp = None;
                                return Ok(BlockExit::Suspend);
                            }
                            Ctrl::DiseJump(_) => {
                                unreachable!("straight groups have no DISE branches")
                            }
                        }
                        continue;
                    }
                    let mut d: u8 = 0;
                    loop {
                        let inst = blk.ops[base + d as usize];
                        let ctrl = self.exec_fast(inst, g.fetch_size)?;
                        *fuel -= 1;
                        self.total_insts += 1;
                        if d == 0 {
                            self.app_insts += 1;
                        }
                        match ctrl {
                            Ctrl::Next => {
                                if d + 1 < len {
                                    d += 1;
                                    if *fuel == 0 {
                                        self.disepc = d;
                                        self.exp = Some(ExpState::Dedicated { ix: dict_ix });
                                        return Ok(BlockExit::Suspend);
                                    }
                                } else {
                                    self.pc += g.fetch_size;
                                    gi += 1;
                                    break;
                                }
                            }
                            Ctrl::DiseJump(j) => {
                                debug_assert!(j < len, "bake-checked target");
                                d = j;
                                if *fuel == 0 {
                                    self.disepc = d;
                                    self.exp = Some(ExpState::Dedicated { ix: dict_ix });
                                    return Ok(BlockExit::Suspend);
                                }
                            }
                            Ctrl::AppJump(t) => {
                                self.pc = t;
                                return Ok(BlockExit::Chain);
                            }
                            Ctrl::Halt => {
                                self.halted = true;
                                self.disepc = d;
                                self.exp = None;
                                return Ok(BlockExit::Suspend);
                            }
                        }
                    }
                }
            }
        }
        // Fell off the block's end: PC already advanced past the last
        // group — chain into the next block.
        Ok(BlockExit::Chain)
    }

    /// Restores the reference path's counter state after a µop errs
    /// mid-way through a batched straight group: the batch charged the
    /// whole group up front, but the slow path charges per µop *after*
    /// a successful exec, so the erroring µop and everything behind it
    /// must be refunded. (`executed` = µops fully retired before the
    /// error.) Keeps machine state bit-identical with the interpreter
    /// even when a run is inspected after an error.
    #[cold]
    fn batch_unwind(&mut self, fuel: &mut u64, executed: u64, group_len: u64) {
        let rest = group_len - executed;
        *fuel += rest;
        self.total_insts -= rest;
        if executed == 0 {
            self.app_insts -= 1;
        }
    }

    /// Executes one instruction's semantics, returning control outcome,
    /// effective address, and taken-ness (for application control).
    fn exec(&mut self, inst: Inst, item_size: u64) -> Result<(Ctrl, Option<u64>, Option<bool>)> {
        let mut mem_addr = None;
        let mut taken = None;
        let ctrl = self.exec_inner::<true>(inst, item_size, &mut mem_addr, &mut taken)?;
        Ok((ctrl, mem_addr, taken))
    }

    /// [`Machine::exec`] without materializing the effective-address and
    /// taken-ness outputs — the translated-block executors run every
    /// instruction through here and discard both, and the `TRACK = false`
    /// monomorphization lets the compiler drop the output stores and the
    /// aggregate return from the hottest loop in the simulator. Semantics
    /// are [`Machine::exec`]'s exactly (one shared body).
    #[inline]
    fn exec_fast(&mut self, inst: Inst, item_size: u64) -> Result<Ctrl> {
        self.exec_inner::<false>(inst, item_size, &mut None, &mut None)
    }

    fn exec_inner<const TRACK: bool>(
        &mut self,
        inst: Inst,
        item_size: u64,
        mem_addr: &mut Option<u64>,
        taken: &mut Option<bool>,
    ) -> Result<Ctrl> {
        use Op::*;
        let ra = self.reg(inst.ra);
        let rb = self.reg(inst.rb);
        let next_pc = self.pc + item_size;
        let imm = inst.imm;
        let op2 = if inst.uses_lit { imm as u64 } else { rb };

        let ctrl = match inst.op {
            Halt => Ctrl::Halt,
            Nop => Ctrl::Next,
            Lda => {
                self.set_reg(inst.ra, rb.wrapping_add_signed(imm));
                Ctrl::Next
            }
            Ldah => {
                self.set_reg(inst.ra, rb.wrapping_add_signed(imm << 16));
                Ctrl::Next
            }
            Ldl => {
                let addr = rb.wrapping_add_signed(imm);
                if TRACK {
                    *mem_addr = Some(addr);
                }
                let v = self.mem.load_u32(addr) as i32 as i64 as u64;
                self.set_reg(inst.ra, v);
                Ctrl::Next
            }
            Ldq => {
                let addr = rb.wrapping_add_signed(imm);
                if TRACK {
                    *mem_addr = Some(addr);
                }
                let v = self.mem.load_u64(addr);
                self.set_reg(inst.ra, v);
                Ctrl::Next
            }
            Stl => {
                let addr = rb.wrapping_add_signed(imm);
                if TRACK {
                    *mem_addr = Some(addr);
                }
                self.mem.store_u32(addr, ra as u32);
                Ctrl::Next
            }
            Stq => {
                let addr = rb.wrapping_add_signed(imm);
                if TRACK {
                    *mem_addr = Some(addr);
                }
                self.mem.store_u64(addr, ra);
                Ctrl::Next
            }
            Br | Bsr => {
                self.set_reg(inst.ra, next_pc);
                if TRACK {
                    *taken = Some(true);
                }
                Ctrl::AppJump(next_pc.wrapping_add_signed(imm))
            }
            Beq | Bne | Blt | Ble | Bgt | Bge | Blbc | Blbs => {
                let cond = match inst.op {
                    Beq => ra == 0,
                    Bne => ra != 0,
                    Blt => (ra as i64) < 0,
                    Ble => (ra as i64) <= 0,
                    Bgt => (ra as i64) > 0,
                    Bge => (ra as i64) >= 0,
                    Blbc => ra & 1 == 0,
                    Blbs => ra & 1 == 1,
                    _ => unreachable!(),
                };
                if inst.dise_branch {
                    if cond {
                        Ctrl::DiseJump(imm as u8)
                    } else {
                        Ctrl::Next
                    }
                } else {
                    if TRACK {
                        *taken = Some(cond);
                    }
                    if cond {
                        Ctrl::AppJump(next_pc.wrapping_add_signed(imm))
                    } else {
                        Ctrl::Next
                    }
                }
            }
            Jmp | Jsr | Ret => {
                self.set_reg(inst.ra, next_pc);
                if TRACK {
                    *taken = Some(true);
                }
                Ctrl::AppJump(rb)
            }
            Addq => {
                self.set_reg(inst.rc, ra.wrapping_add(op2));
                Ctrl::Next
            }
            Subq => {
                self.set_reg(inst.rc, ra.wrapping_sub(op2));
                Ctrl::Next
            }
            Addl => {
                self.set_reg(inst.rc, (ra as u32).wrapping_add(op2 as u32) as i32 as i64 as u64);
                Ctrl::Next
            }
            Subl => {
                self.set_reg(inst.rc, (ra as u32).wrapping_sub(op2 as u32) as i32 as i64 as u64);
                Ctrl::Next
            }
            S4addq => {
                self.set_reg(inst.rc, (ra << 2).wrapping_add(op2));
                Ctrl::Next
            }
            S8addq => {
                self.set_reg(inst.rc, (ra << 3).wrapping_add(op2));
                Ctrl::Next
            }
            Mulq => {
                self.set_reg(inst.rc, ra.wrapping_mul(op2));
                Ctrl::Next
            }
            And => {
                self.set_reg(inst.rc, ra & op2);
                Ctrl::Next
            }
            Bis => {
                self.set_reg(inst.rc, ra | op2);
                Ctrl::Next
            }
            Xor => {
                self.set_reg(inst.rc, ra ^ op2);
                Ctrl::Next
            }
            Bic => {
                self.set_reg(inst.rc, ra & !op2);
                Ctrl::Next
            }
            Ornot => {
                self.set_reg(inst.rc, ra | !op2);
                Ctrl::Next
            }
            Sll => {
                self.set_reg(inst.rc, ra << (op2 & 63));
                Ctrl::Next
            }
            Srl => {
                self.set_reg(inst.rc, ra >> (op2 & 63));
                Ctrl::Next
            }
            Sra => {
                self.set_reg(inst.rc, ((ra as i64) >> (op2 & 63)) as u64);
                Ctrl::Next
            }
            Cmpeq => {
                self.set_reg(inst.rc, (ra == op2) as u64);
                Ctrl::Next
            }
            Cmplt => {
                self.set_reg(inst.rc, ((ra as i64) < op2 as i64) as u64);
                Ctrl::Next
            }
            Cmple => {
                self.set_reg(inst.rc, ((ra as i64) <= op2 as i64) as u64);
                Ctrl::Next
            }
            Cmpult => {
                self.set_reg(inst.rc, (ra < op2) as u64);
                Ctrl::Next
            }
            Cmpule => {
                self.set_reg(inst.rc, (ra <= op2) as u64);
                Ctrl::Next
            }
            Cmoveq => {
                if ra == 0 {
                    self.set_reg(inst.rc, op2);
                }
                Ctrl::Next
            }
            Cmovne => {
                if ra != 0 {
                    self.set_reg(inst.rc, op2);
                }
                Ctrl::Next
            }
            Cw0 | Cw1 | Cw2 | Cw3 => {
                return Err(SimError::UnexpandedCodeword { pc: self.pc });
            }
        };
        Ok(ctrl)
    }
}

/// The registers an instruction's *timing* depends on: its architectural
/// sources, plus the old destination value for conditional moves.
pub fn timing_sources(inst: &Inst) -> impl Iterator<Item = Reg> {
    let cmov_extra = matches!(inst.op, Op::Cmoveq | Op::Cmovne).then_some(inst.rc);
    inst.sources()
        .into_iter()
        .flatten()
        .chain(cmov_extra)
        .filter(|r| !r.is_zero())
}

/// Execution latency (cycles) by opcode class, excluding memory hierarchy
/// time for loads.
pub fn exec_latency(class: OpClass) -> u64 {
    match class {
        OpClass::IntMult => 7,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_core::{dsl, DiseEngine, EngineConfig};
    use dise_isa::Assembler;
    use std::collections::BTreeMap;

    fn asm(listing: &str) -> Program {
        Assembler::new(Program::segment_base(Program::TEXT_SEGMENT))
            .assemble(listing)
            .unwrap()
    }

    #[test]
    fn arithmetic_and_loop() {
        // Sum 1..=10 via a loop.
        let p = asm(
            "       lda r1, 10(r31)     ; i = 10
                    lda r2, 0(r31)      ; sum = 0
             loop:  addq r2, r1, r2
                    subq r1, #1, r1
                    bne r1, loop
                    halt",
        );
        let mut m = Machine::load(&p);
        let r = m.run(1000).unwrap();
        assert!(r.halted());
        assert_eq!(m.reg(Reg::R2), 55);
        assert_eq!(r.app_insts, 2 + 3 * 10 + 1);
    }

    #[test]
    fn memory_round_trip_and_widths() {
        let p = asm(
            "       lda r1, -1(r31)          ; r1 = 0xFFFF...FFFF
                    stq r1, 0(r2)
                    ldq r3, 0(r2)
                    stl r1, 8(r2)
                    ldl r4, 8(r2)
                    halt",
        );
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::r(3)), u64::MAX);
        assert_eq!(m.reg(Reg::r(4)), u64::MAX, "ldl sign-extends");
    }

    #[test]
    fn calls_and_returns() {
        let p = asm(
            "       bsr f
                    halt
             f:     lda r1, 42(r31)
                    ret",
        );
        let mut m = Machine::load(&p);
        let r = m.run(100).unwrap();
        assert!(r.halted());
        assert_eq!(m.reg(Reg::R1), 42);
    }

    #[test]
    fn zero_register_semantics() {
        let p = asm(
            "       lda r31, 7(r31)
                    addq r31, #3, r1
                    halt",
        );
        let mut m = Machine::load(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::ZERO), 0);
        assert_eq!(m.reg(Reg::R1), 3);
    }

    #[test]
    fn shifts_compares_cmov() {
        let p = asm(
            "       lda r1, 1(r31)
                    sll r1, #8, r2       ; 256
                    sra r2, #4, r3       ; 16
                    cmplt r3, r2, r4     ; 1
                    cmoveq r4, r2, r5    ; not moved (r4 != 0)
                    cmovne r4, r3, r6    ; moved: r6 = 16
                    mulq r3, r3, r7      ; 256
                    halt",
        );
        let mut m = Machine::load(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::R2), 256);
        assert_eq!(m.reg(Reg::r(3)), 16);
        assert_eq!(m.reg(Reg::r(4)), 1);
        assert_eq!(m.reg(Reg::r(5)), 0);
        assert_eq!(m.reg(Reg::r(6)), 16);
        assert_eq!(m.reg(Reg::r(7)), 256);
    }

    fn mfi_engine(error_handler: u64) -> DiseEngine {
        let set = dsl::parse(
            "P1: T.OPCLASS == store -> R1
             P2: T.OPCLASS == load  -> R1
             R1: srl T.RS, #26, $dr1
                 cmpeq $dr1, $dr2, $dr1
                 beq $dr1, =error
                 T.INSN",
            &[("error".to_string(), error_handler)]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
        )
        .unwrap();
        DiseEngine::with_productions(EngineConfig::default(), set).unwrap()
    }

    #[test]
    fn dise_expansion_preserves_semantics() {
        let p = asm(
            "       stq r1, 0(r2)
                    ldq r3, 0(r2)
                    halt
             error: halt",
        );
        let data = Program::segment_base(Program::DATA_SEGMENT);
        // Plain run.
        let mut plain = Machine::load(&p);
        plain.set_reg(Reg::R1, 99);
        plain.set_reg(Reg::R2, data);
        plain.run(100).unwrap();
        // DISE MFI run.
        let mut dise = Machine::load(&p);
        dise.set_reg(Reg::R1, 99);
        dise.set_reg(Reg::R2, data);
        let mut e = mfi_engine(p.symbol("error").unwrap());
        e.reset_stats();
        dise.attach_engine(e);
        // $dr2 holds the legal segment id.
        dise.set_reg(Reg::dr(2), Program::DATA_SEGMENT);
        let r = dise.run(1000).unwrap();
        assert!(r.halted());
        assert_eq!(dise.reg(Reg::r(3)), 99, "loads still load");
        // The checks pass: we halt at the first halt, not the error one.
        assert_eq!(dise.pc().0, p.symbol("error").unwrap() - 4);
        // 3 app insts reached halt; each mem op became 4 dynamic insts.
        assert_eq!(r.app_insts, 3);
        assert_eq!(r.total_insts, 4 + 4 + 1);
        let stats = dise.engine().unwrap().stats();
        assert_eq!(stats.expansions, 2);
    }

    #[test]
    fn mfi_catches_out_of_segment_store() {
        let p = asm(
            "       stq r1, 0(r2)
                    lda r4, 1(r31)       ; should be skipped on fault
                    halt
             error: lda r5, 1(r31)
                    halt",
        );
        let mut m = Machine::load(&p);
        // Address in the *text* segment — illegal for data access.
        m.set_reg(Reg::R2, Program::segment_base(Program::TEXT_SEGMENT));
        m.attach_engine(mfi_engine(p.symbol("error").unwrap()));
        m.set_reg(Reg::dr(2), Program::DATA_SEGMENT);
        let r = m.run(1000).unwrap();
        assert!(r.halted());
        assert_eq!(m.reg(Reg::r(5)), 1, "error handler ran");
        assert_eq!(m.reg(Reg::r(4)), 0, "fall-through was skipped");
        // The store itself must have been suppressed (the taken branch
        // aborted the rest of the sequence).
        assert_eq!(m.mem.load_u64(Program::segment_base(Program::TEXT_SEGMENT)), 0);
    }

    #[test]
    fn dise_internal_branches_move_disepc_only() {
        // An engine whose sequence skips an instruction with a DISE branch:
        //   0: bne.d T-cond… we use $dr1 preset to 1 → branch to @2
        //   1: lda $dr4, 1(r31)   (skipped)
        //   2: T.INSN
        let set = dsl::parse(
            "P1: T.OPCLASS == store -> R1
             R1: bne.d $dr1, @2
                 lda $dr4, 1(r31)
                 T.INSN",
            &BTreeMap::new(),
        )
        .unwrap();
        let p = asm("stq r1, 0(r2)\nhalt");
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.attach_engine(DiseEngine::with_productions(EngineConfig::default(), set).unwrap());
        m.set_reg(Reg::dr(1), 1);
        let r = m.run(100).unwrap();
        assert!(r.halted());
        assert_eq!(m.reg(Reg::dr(4)), 0, "lda was skipped by the DISE branch");
        // And with the condition false, the lda executes.
        let set = dsl::parse(
            "P1: T.OPCLASS == store -> R1
             R1: bne.d $dr1, @2
                 lda $dr4, 1(r31)
                 T.INSN",
            &BTreeMap::new(),
        )
        .unwrap();
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.attach_engine(DiseEngine::with_productions(EngineConfig::default(), set).unwrap());
        let r = m.run(100).unwrap();
        assert!(r.halted());
        assert_eq!(m.reg(Reg::dr(4)), 1);
    }

    #[test]
    fn interrupt_mid_sequence_resumes_precisely() {
        let p = asm("stq r1, 0(r2)\nhalt\nerror: halt");
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R1, 7);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.attach_engine(mfi_engine(p.symbol("error").unwrap()));
        m.set_reg(Reg::dr(2), Program::DATA_SEGMENT);
        // Execute two replacement instructions, then "interrupt".
        let s0 = m.step().unwrap().unwrap();
        assert_eq!(s0.disepc, 0);
        let s1 = m.step().unwrap().unwrap();
        assert_eq!(s1.disepc, 1);
        m.interrupt();
        // Post-handler: fetch restarts at PC with DISEPC 2 — the beq, then
        // the store, then halt.
        let s2 = m.step().unwrap().unwrap();
        assert_eq!((s2.pc, s2.disepc), (s0.pc, 2));
        let s3 = m.step().unwrap().unwrap();
        assert_eq!(s3.inst.op, Op::Stq);
        let r = m.run(10).unwrap();
        assert!(r.halted());
        assert_eq!(
            m.mem.load_u64(Program::segment_base(Program::DATA_SEGMENT)),
            7
        );
    }

    #[test]
    fn dedicated_dictionary_expansion() {
        // Compressed program: short codeword expands to [lda r1, 5(r31);
        // addq r1, r1, r2].
        let items = [
            TextItem::Short(0),
            TextItem::Inst(Inst::halt()),
        ];
        let p = Program::from_items(Program::segment_base(Program::TEXT_SEGMENT), &items)
            .unwrap();
        let dict = DedicatedDict::new(vec![vec![
            Inst::li(5, Reg::R1),
            Inst::alu_rr(Op::Addq, Reg::R1, Reg::R1, Reg::R2),
        ]]);
        let mut m = Machine::load(&p);
        m.attach_dedicated(dict);
        let r = m.run(100).unwrap();
        assert!(r.halted());
        assert_eq!(m.reg(Reg::R2), 10);
        assert_eq!(r.app_insts, 2);
        assert_eq!(r.total_insts, 3);
    }

    #[test]
    fn unexpanded_codewords_fault() {
        let p = Program::from_insts(
            0x0400_0000,
            &[Inst::codeword(Op::Cw0, 0, 0, 0, 5), Inst::halt()],
        )
        .unwrap();
        let mut m = Machine::load(&p);
        assert!(matches!(
            m.step(),
            Err(SimError::UnexpandedCodeword { .. })
        ));
        // Same with a short codeword and no dictionary.
        let p = Program::from_items(0x0400_0000, &[TextItem::Short(3)]).unwrap();
        let mut m = Machine::load(&p);
        assert!(matches!(m.step(), Err(SimError::BadShortCodeword { .. })));
    }

    #[test]
    fn out_of_fuel() {
        let p = asm("loop: br r31, loop");
        let mut m = Machine::load(&p);
        assert!(matches!(m.run(100), Err(SimError::OutOfFuel)));
    }

    #[test]
    fn step_info_flags() {
        let p = asm("stq r1, 0(r2)\nhalt\nerror: halt");
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.attach_engine(mfi_engine(p.symbol("error").unwrap()));
        m.set_reg(Reg::dr(2), Program::DATA_SEGMENT);
        let s0 = m.step().unwrap().unwrap();
        assert!(s0.first_of_fetch);
        assert!(s0.expanded);
        assert!(s0.is_replacement);
        assert_eq!(s0.expansion_len, 4);
        assert!(s0.dise_stall > 0, "cold PT/RT misses were charged");
        let s1 = m.step().unwrap().unwrap();
        assert!(!s1.first_of_fetch);
        assert_eq!(s1.dise_stall, 0);
        let s2 = m.step().unwrap().unwrap(); // beq (not taken)
        assert_eq!(s2.taken, Some(false));
        assert!(!s2.predicted, "non-trigger replacement branch unpredicted");
        let s3 = m.step().unwrap().unwrap(); // the store (trigger instance)
        assert!(s3.predicted);
        assert!(s3.mem_addr.is_some());
    }
}
