//! Set-associative caches and the two-level memory hierarchy.
//!
//! The paper's configuration: 32KB L1 instruction and data caches and a
//! unified 1MB L2 (§4); Figure 6 middle and Figure 7 middle sweep the
//! I-cache from 8KB to perfect.

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. `None` models a perfect (always-hit) cache.
    pub size: Option<u64>,
    /// Associativity.
    pub assoc: u32,
    /// Line size in bytes.
    pub line: u64,
}

impl CacheConfig {
    /// A cache of `size` bytes with default 2-way associativity and 64-byte
    /// lines.
    pub fn of_size(size: u64) -> CacheConfig {
        CacheConfig {
            size: Some(size),
            assoc: 2,
            line: 64,
        }
    }

    /// A perfect (always-hit) cache.
    pub fn perfect() -> CacheConfig {
        CacheConfig {
            size: None,
            assoc: 1,
            line: 64,
        }
    }
}

/// Hit/miss statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Registers this cache's counters under `prefix` (`l1i`, `l1d`,
    /// `l2`) in the unified stats registry.
    pub fn register(&self, prefix: &str, registry: &mut crate::telemetry::StatsRegistry) {
        registry.count(format!("{prefix}.accesses"), self.accesses);
        registry.count(format!("{prefix}.misses"), self.misses);
    }
}

/// One set-associative cache with LRU replacement. Tags only (no data —
/// the functional machine holds the actual values).
///
/// Storage is a single flat MRU-first tag array (`assoc` ways per set)
/// rather than per-set vectors: `access` runs once or twice per committed
/// instruction, so it avoids pointer chasing, keeps the common
/// hit-at-MRU case shuffle-free, and — since every paper geometry has
/// power-of-two line size and set count — indexes with shifts and masks
/// instead of 64-bit divisions (a div/mod fallback covers odd
/// geometries). Hit/miss behavior is identical to the textbook
/// remove/insert-front formulation.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// MRU-first ways: set `i` occupies `tags[i*assoc ..][..lens[i]]`.
    tags: Box<[u64]>,
    /// Resident ways per set (≤ assoc).
    lens: Box<[u32]>,
    assoc: usize,
    num_sets: u64,
    /// `(line_shift, set_mask, set_bits)` when the geometry is
    /// power-of-two; `None` falls back to division.
    shifts: Option<(u32, u64, u32)>,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (size smaller than one line,
    /// associativity of zero).
    pub fn new(config: CacheConfig) -> Cache {
        let num_sets = match config.size {
            None => 0,
            Some(size) => {
                assert!(config.assoc > 0, "associativity must be positive");
                assert!(
                    size >= config.line * config.assoc as u64,
                    "cache smaller than one set"
                );
                size / (config.line * config.assoc as u64)
            }
        };
        let shifts = (config.line.is_power_of_two() && num_sets.is_power_of_two())
            .then(|| {
                (
                    config.line.trailing_zeros(),
                    num_sets - 1,
                    num_sets.trailing_zeros(),
                )
            });
        let assoc = config.assoc as usize;
        Cache {
            config,
            tags: vec![0; num_sets as usize * assoc].into_boxed_slice(),
            lens: vec![0; num_sets as usize].into_boxed_slice(),
            assoc,
            num_sets,
            shifts,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Splits `addr` into `(set index, tag)`.
    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        match self.shifts {
            Some((line_shift, set_mask, set_bits)) => {
                let line = addr >> line_shift;
                ((line & set_mask) as usize, line >> set_bits)
            }
            None => {
                let line = addr / self.config.line;
                ((line % self.num_sets) as usize, line / self.num_sets)
            }
        }
    }

    /// Probes the cache for the line containing `addr`; fills on miss.
    /// Returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.stats.accesses += 1;
        if self.config.size.is_none() {
            return true;
        }
        let (set_ix, tag) = self.locate(addr);
        let len = self.lens[set_ix] as usize;
        let ways = &mut self.tags[set_ix * self.assoc..][..self.assoc];
        if len > 0 && ways[0] == tag {
            return true; // already MRU: nothing to reorder
        }
        for i in 1..len {
            if ways[i] == tag {
                // Move the hit way to MRU, sliding the younger ways down.
                ways[..=i].rotate_right(1);
                return true;
            }
        }
        self.stats.misses += 1;
        // Fill at MRU; the rotate evicts the LRU way once the set is full.
        let new_len = (len + 1).min(self.assoc);
        ways[..new_len].rotate_right(1);
        ways[0] = tag;
        self.lens[set_ix] = new_len as u32;
        false
    }

    /// True if an access spanning `[addr, addr+len)` crosses a line
    /// boundary (the caller should probe both lines).
    pub fn straddles(&self, addr: u64, len: u64) -> bool {
        len > 0 && (addr / self.config.line) != ((addr + len - 1) / self.config.line)
    }

    /// Serializes occupied sets only (resident tags in MRU order) plus the
    /// hit/miss counters. Unoccupied ways beyond `lens[i]` are never
    /// written, so a save → restore → save round trip is byte-stable even
    /// though the flat array holds junk past each set's length.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::Writer) {
        let occupied = self.lens.iter().filter(|&&l| l > 0).count();
        w.u64(occupied as u64);
        for (set, &len) in self.lens.iter().enumerate() {
            if len == 0 {
                continue;
            }
            w.u64(set as u64);
            w.u32(len);
            for &tag in &self.tags[set * self.assoc..][..len as usize] {
                w.u64(tag);
            }
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.misses);
    }

    /// Parses a [`Cache::save_state`] section, validating it against this
    /// cache's geometry without mutating anything.
    pub(crate) fn read_state(&self, r: &mut crate::snapshot::Reader<'_>) -> crate::Result<CacheState> {
        let n = r.len_prefix(8 + 4)?;
        let mut sets = Vec::with_capacity(n);
        for _ in 0..n {
            let set = r.u64()? as usize;
            let len = r.u32()?;
            if set >= self.lens.len() || len == 0 || len as usize > self.assoc {
                return Err(crate::SimError::Snapshot(format!(
                    "snapshot corrupt: cache set {set} with {len} ways does not fit a \
                     {}-set {}-way cache",
                    self.lens.len(),
                    self.assoc
                )));
            }
            let mut ways = Vec::with_capacity(len as usize);
            for _ in 0..len {
                ways.push(r.u64()?);
            }
            sets.push((set, ways));
        }
        Ok(CacheState {
            sets,
            stats: CacheStats {
                accesses: r.u64()?,
                misses: r.u64()?,
            },
        })
    }

    /// Installs a parsed state (resetting to cold first, so sets absent
    /// from the snapshot end up empty).
    pub(crate) fn apply_state(&mut self, state: CacheState) {
        self.lens.fill(0);
        for (set, ways) in state.sets {
            self.lens[set] = ways.len() as u32;
            self.tags[set * self.assoc..][..ways.len()].copy_from_slice(&ways);
        }
        self.stats = state.stats;
    }
}

/// Parsed, geometry-validated mutable state of one cache.
#[derive(Debug)]
pub(crate) struct CacheState {
    /// `(set index, MRU-first resident tags)` for every occupied set.
    sets: Vec<(usize, Vec<u64>)>,
    stats: CacheStats,
}

/// Latencies and configuration for the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryHierarchyConfig {
    /// L1 instruction cache.
    pub icache: CacheConfig,
    /// L1 data cache.
    pub dcache: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 hit latency.
    pub l2_latency: u64,
    /// Main-memory latency.
    pub mem_latency: u64,
}

impl Default for MemoryHierarchyConfig {
    fn default() -> MemoryHierarchyConfig {
        MemoryHierarchyConfig {
            icache: CacheConfig::of_size(32 * 1024),
            dcache: CacheConfig::of_size(32 * 1024),
            l2: CacheConfig {
                size: Some(1024 * 1024),
                assoc: 4,
                line: 64,
            },
            l1_latency: 1,
            l2_latency: 12,
            mem_latency: 100,
        }
    }
}

/// The I-cache + D-cache + unified-L2 hierarchy. Returns access latencies;
/// the timing model turns them into stalls.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    config: MemoryHierarchyConfig,
    icache: Cache,
    dcache: Cache,
    l2: Cache,
}

impl MemoryHierarchy {
    /// Creates the hierarchy.
    pub fn new(config: MemoryHierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            l2: Cache::new(config.l2),
            config,
        }
    }

    /// Instruction fetch of `len` bytes at `addr`: returns total latency.
    pub fn ifetch(&mut self, addr: u64, len: u64) -> u64 {
        let mut latency = self.config.l1_latency;
        for a in Self::lines_touched(addr, len, self.icache.config().line) {
            if !self.icache.access(a) {
                latency += if self.l2.access(a) {
                    self.config.l2_latency
                } else {
                    self.config.l2_latency + self.config.mem_latency
                };
            }
        }
        latency
    }

    /// Data access at `addr`: returns total latency (loads); stores use the
    /// same path for tag state but the timing model does not stall on them.
    pub fn daccess(&mut self, addr: u64) -> u64 {
        if self.dcache.access(addr) {
            self.config.l1_latency
        } else if self.l2.access(addr) {
            self.config.l1_latency + self.config.l2_latency
        } else {
            self.config.l1_latency + self.config.l2_latency + self.config.mem_latency
        }
    }

    fn lines_touched(addr: u64, len: u64, line: u64) -> impl Iterator<Item = u64> {
        let (first, last) = if line.is_power_of_two() {
            let s = line.trailing_zeros();
            (addr >> s, (addr + len.max(1) - 1) >> s)
        } else {
            (addr / line, (addr + len.max(1) - 1) / line)
        };
        (first..=last).map(move |l| l * line)
    }

    /// I-cache statistics.
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// D-cache statistics.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Serializes all three caches' mutable state.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::Writer) {
        self.icache.save_state(w);
        self.dcache.save_state(w);
        self.l2.save_state(w);
    }

    /// Parses a [`MemoryHierarchy::save_state`] section (validating each
    /// cache against its configured geometry) without mutating anything.
    pub(crate) fn read_state(
        &self,
        r: &mut crate::snapshot::Reader<'_>,
    ) -> crate::Result<HierarchyState> {
        Ok(HierarchyState {
            icache: self.icache.read_state(r)?,
            dcache: self.dcache.read_state(r)?,
            l2: self.l2.read_state(r)?,
        })
    }

    /// Installs a parsed state.
    pub(crate) fn apply_state(&mut self, state: HierarchyState) {
        self.icache.apply_state(state.icache);
        self.dcache.apply_state(state.dcache);
        self.l2.apply_state(state.l2);
    }
}

/// Parsed mutable state of the full hierarchy.
#[derive(Debug)]
pub(crate) struct HierarchyState {
    icache: CacheState,
    dcache: CacheState,
    l2: CacheState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_within_a_set() {
        // 2 sets × 2 ways × 64B lines = 256B cache.
        let mut c = Cache::new(CacheConfig {
            size: Some(256),
            assoc: 2,
            line: 64,
        });
        // Three lines mapping to set 0: 0, 128, 256.
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0), "still resident");
        assert!(!c.access(256), "fills, evicting LRU (128)");
        assert!(!c.access(128), "128 was evicted");
        assert_eq!(c.stats().accesses, 5);
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn perfect_cache_always_hits() {
        let mut c = Cache::new(CacheConfig::perfect());
        for a in (0..100_000).step_by(4096) {
            assert!(c.access(a));
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn working_set_behaviour() {
        // An 8KB cache thrashes on a 16KB loop but holds a 4KB one.
        let mut c = Cache::new(CacheConfig::of_size(8 * 1024));
        for _ in 0..4 {
            for a in (0..4 * 1024).step_by(64) {
                c.access(a);
            }
        }
        let small_misses = c.stats().misses;
        assert_eq!(small_misses, 64, "only compulsory misses");
        let mut c = Cache::new(CacheConfig::of_size(8 * 1024));
        for _ in 0..4 {
            for a in (0..16 * 1024).step_by(64) {
                c.access(a);
            }
        }
        assert!(c.stats().misses > 600, "16KB loop thrashes an 8KB cache");
    }

    /// A deterministic address trace mixing sequential runs, strided
    /// sweeps and pseudo-random pointer chasing — enough variety to
    /// exercise hits, conflict misses and LRU rotation in every set.
    fn shared_trace() -> Vec<u64> {
        let mut addrs = Vec::with_capacity(30_000);
        let mut lcg = 0x1234_5678_9abc_def0u64;
        for i in 0..10_000u64 {
            addrs.push(i * 8 % 16384);
            addrs.push(i * 192 % 65536);
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            addrs.push(lcg % 32768);
        }
        addrs
    }

    #[test]
    fn shift_path_and_division_path_agree_on_pow2_geometry() {
        // Same power-of-two geometry computed both ways: `fast` uses the
        // shift/mask indexing `new` installs, `slow` has it forcibly
        // disabled so `locate` takes the div/mod fallback. Every access
        // must agree hit-for-hit.
        let config = CacheConfig {
            size: Some(16 * 1024),
            assoc: 4,
            line: 64,
        };
        let mut fast = Cache::new(config);
        let mut slow = Cache::new(config);
        assert!(slow.shifts.is_some(), "pow2 geometry installs shifts");
        slow.shifts = None;
        for addr in shared_trace() {
            assert_eq!(fast.access(addr), slow.access(addr), "addr {addr:#x}");
        }
        assert_eq!(fast.stats(), slow.stats());
        assert!(fast.stats().misses > 0, "trace exercises misses");
    }

    #[test]
    fn non_pow2_geometry_matches_reference_lru() {
        // 3-way, 48-set, 64-byte lines: 9216 bytes, nothing power-of-two
        // except the line. The flat MRU-first array with div/mod indexing
        // must behave exactly like the textbook per-set LRU list.
        let config = CacheConfig {
            size: Some(48 * 3 * 64),
            assoc: 3,
            line: 64,
        };
        let mut cache = Cache::new(config);
        assert!(cache.shifts.is_none(), "48 sets fall back to division");
        let mut reference: Vec<Vec<u64>> = vec![Vec::new(); 48];
        let mut ref_stats = CacheStats::default();
        for addr in shared_trace() {
            let line = addr / 64;
            let set = &mut reference[(line % 48) as usize];
            let tag = line / 48;
            ref_stats.accesses += 1;
            let hit = match set.iter().position(|&t| t == tag) {
                Some(i) => {
                    let t = set.remove(i);
                    set.insert(0, t);
                    true
                }
                None => {
                    ref_stats.misses += 1;
                    set.insert(0, tag);
                    set.truncate(3);
                    false
                }
            };
            assert_eq!(cache.access(addr), hit, "addr {addr:#x}");
        }
        assert_eq!(cache.stats(), ref_stats);
        assert!(ref_stats.misses > 1000, "non-pow2 geometry thrashes some");
    }

    #[test]
    fn hierarchy_latencies() {
        let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::default());
        // Cold: L1 miss + L2 miss.
        assert_eq!(h.ifetch(0, 4), 1 + 12 + 100);
        // Warm: L1 hit.
        assert_eq!(h.ifetch(0, 4), 1);
        // Data access to the same line: D-cache cold but L2 warm.
        assert_eq!(h.daccess(8), 1 + 12);
        assert_eq!(h.daccess(8), 1);
    }

    #[test]
    fn line_straddling_fetch_probes_both_lines() {
        let mut h = MemoryHierarchy::new(MemoryHierarchyConfig::default());
        let lat = h.ifetch(62, 4); // touches lines 0 and 64
        assert_eq!(lat, 1 + 2 * 112);
        assert_eq!(h.icache_stats().accesses, 2);
    }
}
