//! The cycle-level out-of-order timing model.
//!
//! A timestamp-dataflow model of the paper's machine: a MIPS R10000-like
//! superscalar, default 4-wide with a 12-stage pipeline (10 cycles of
//! front-end depth between fetch and dispatch), a 128-entry reorder buffer
//! and 80 reservation stations, aggressive branch prediction
//! (gshare + BTB + RAS) and load speculation with store-to-load forwarding
//! (§4). The functional [`Machine`] is the oracle: it produces the
//! correct-path dynamic instruction stream (including DISE replacement
//! sequences), and this model computes when each instruction would fetch,
//! dispatch, issue, complete and commit. Wrong-path work appears as fetch
//! redirect bubbles charged with the full front-end depth — the standard
//! oracle-driven timing-shell approximation.
//!
//! DISE costs modeled (paper §4.1):
//!
//! * replacement instructions consume fetch/decode/dispatch slots, RS and
//!   ROB entries, and execution resources, but do not access the I-cache;
//! * PT/RT misses flush the pipeline and stall fetch (30/150 cycles);
//! * the engine's placement cost is selectable via [`ExpansionCost`]:
//!   `Free` (idealized), `StallPerExpansion` (PT/RT in parallel with the
//!   decoder, one bubble per actual expansion) or `ExtraStage` (PT/RT in
//!   series, one additional front-end stage, growing every branch
//!   misprediction penalty);
//! * taken DISE-internal branches and taken non-trigger replacement
//!   branches always redirect (they are never predicted, §2.2).

use crate::bpred::{BpredConfig, BpredStats, BranchPredictor};
use crate::cache::{CacheStats, MemoryHierarchy, MemoryHierarchyConfig};
use crate::machine::{exec_latency, timing_sources, Machine, StepInfo};
use crate::ring::Ring;
use crate::telemetry::{AnomalyReport, EventRing, StallCause, StatsRegistry, TraceEvent, TraceKind};
use crate::{Result, SimError};
use dise_core::EngineStats;
use dise_isa::OpClass;
use std::collections::{HashMap, VecDeque};

/// Where the DISE engine sits relative to the decoder (Figure 6 top).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpansionCost {
    /// Idealized: expansion is free.
    #[default]
    Free,
    /// PT/RT accessed in parallel with the decoder: a one-cycle fetch
    /// bubble per actual expansion (the paper's `+stall`).
    StallPerExpansion,
    /// PT/RT in series with the decoder: one extra front-end stage, paid on
    /// every pipeline fill — i.e. a one-cycle-deeper misprediction penalty
    /// on all code, ACF-free or not (the paper's `+pipe`).
    ExtraStage,
}

/// Timing-model configuration. Defaults are the paper's baseline machine.
///
/// The `Debug` form spells out exactly the result-affecting fields — the
/// figure harness uses it as a content-address cache key — so the
/// telemetry knobs (`trace_last`, `watchdog`), which can never change a
/// simulation result, are deliberately excluded from it.
#[derive(Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Superscalar width (fetch/decode/issue/commit per cycle).
    pub width: u64,
    /// Front-end depth in cycles from fetch to dispatch (12-stage pipeline
    /// ≈ 10 cycles of front end before the out-of-order core).
    pub frontend_depth: u64,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Reservation stations.
    pub rs_size: usize,
    /// Memory hierarchy.
    pub mem: MemoryHierarchyConfig,
    /// Branch predictor.
    pub bpred: BpredConfig,
    /// DISE engine placement cost.
    pub expansion_cost: ExpansionCost,
    /// Use the timing-model fast path: a direct-mapped store-granule table
    /// instead of a `HashMap`, fixed ring buffers for the ROB/RS windows,
    /// and the in-place [`Machine::step_into`] oracle loop. Purely a
    /// simulation-speed knob — statistics are bit-identical with it off
    /// (differentially tested in `tests/timing_fastpath.rs`).
    pub fast_path: bool,
    /// Telemetry: capacity of the pipeline event ring (the last-K events
    /// dumped on an anomaly). `0` disables tracing entirely — the only
    /// per-instruction cost left is one branch.
    pub trace_last: usize,
    /// Telemetry: watchdog threshold — a gap of more than this many
    /// cycles between consecutive commits with a non-empty ROB aborts the
    /// run with [`SimError::Anomaly`] and dumps an [`AnomalyReport`].
    /// `0` disables the watchdog.
    pub watchdog: u64,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            width: 4,
            frontend_depth: 10,
            rob_size: 128,
            rs_size: 80,
            mem: MemoryHierarchyConfig::default(),
            bpred: BpredConfig::default(),
            expansion_cost: ExpansionCost::Free,
            fast_path: true,
            trace_last: 0,
            watchdog: 0,
        }
    }
}

impl std::fmt::Debug for SimConfig {
    /// Identical to the derived form minus the telemetry knobs: this
    /// string keys the harness result cache, and tracing must never
    /// invalidate (or fork) cached results.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("width", &self.width)
            .field("frontend_depth", &self.frontend_depth)
            .field("rob_size", &self.rob_size)
            .field("rs_size", &self.rs_size)
            .field("mem", &self.mem)
            .field("bpred", &self.bpred)
            .field("expansion_cost", &self.expansion_cost)
            .field("fast_path", &self.fast_path)
            .finish()
    }
}

impl SimConfig {
    /// Sets the superscalar width.
    pub fn with_width(mut self, width: u64) -> SimConfig {
        self.width = width;
        self
    }

    /// Sets the I-cache size (`None` = perfect I-cache).
    pub fn with_icache_size(mut self, size: Option<u64>) -> SimConfig {
        self.mem.icache = match size {
            Some(s) => crate::cache::CacheConfig::of_size(s),
            None => crate::cache::CacheConfig::perfect(),
        };
        self
    }

    /// Sets the DISE expansion cost model.
    pub fn with_expansion_cost(mut self, cost: ExpansionCost) -> SimConfig {
        self.expansion_cost = cost;
        self
    }

    /// Disables the timing-model fast path (store table, ring windows,
    /// in-place stepping) — used by differential tests and honest baseline
    /// measurements of the fast path itself.
    pub fn slow_path(mut self) -> SimConfig {
        self.fast_path = false;
        self
    }

    /// Enables the pipeline event trace, keeping the last `n` events
    /// (`0` disables it).
    pub fn with_trace_last(mut self, n: usize) -> SimConfig {
        self.trace_last = n;
        self
    }

    /// Sets the commit-gap watchdog threshold in cycles (`0` disables
    /// it).
    pub fn with_watchdog(mut self, cycles: u64) -> SimConfig {
        self.watchdog = cycles;
        self
    }
}

/// Counters accumulated by a timing run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles (commit time of the last instruction).
    pub cycles: u64,
    /// Application (fetched) instructions committed.
    pub app_insts: u64,
    /// All dynamic instructions committed (application + replacement).
    pub total_insts: u64,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// D-cache statistics.
    pub dcache: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// Branch predictor statistics.
    pub bpred: BpredStats,
    /// Fetch redirects (mispredictions + taken unpredicted replacement/DISE
    /// branches).
    pub redirects: u64,
    /// Cycles stalled for DISE PT/RT misses.
    pub dise_stall_cycles: u64,
    /// DISE expansions performed.
    pub expansions: u64,
    /// Full DISE engine statistics (all-zero when no engine is attached).
    pub engine: EngineStats,
}

impl SimStats {
    /// Committed application instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.app_insts as f64 / self.cycles as f64
        }
    }

    /// This snapshot as a [`StatsRegistry`] — the canonical named,
    /// stable-ordered export (`SimStats` itself is the source-compatible
    /// struct view of the same counters).
    pub fn registry(&self) -> StatsRegistry {
        let mut r = StatsRegistry::new();
        r.count("sim.cycles", self.cycles);
        r.count("sim.app_insts", self.app_insts);
        r.count("sim.total_insts", self.total_insts);
        r.count("sim.redirects", self.redirects);
        r.count("sim.dise_stall_cycles", self.dise_stall_cycles);
        r.value("sim.ipc", self.ipc());
        self.icache.register("l1i", &mut r);
        self.dcache.register("l1d", &mut r);
        self.l2.register("l2", &mut r);
        self.bpred.register("bpred", &mut r);
        for (name, v) in self.engine.named_counters() {
            r.count(format!("engine.{name}"), v);
        }
        r
    }
}

/// Result of a timing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Timing statistics.
    pub stats: SimStats,
    /// True if the program halted within the budget.
    pub halted: bool,
}

/// Width-limited slot allocator: at most `width` events per cycle, never
/// moving backwards.
#[derive(Debug, Clone, Copy)]
struct SlotAlloc {
    width: u64,
    cycle: u64,
    used: u64,
}

impl SlotAlloc {
    fn new(width: u64) -> SlotAlloc {
        SlotAlloc {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Allocates a slot no earlier than `ready`; returns its cycle.
    fn alloc(&mut self, ready: u64) -> u64 {
        if ready > self.cycle {
            self.cycle = ready;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }

    /// Ends the current group: the next slot starts a new cycle.
    fn break_group(&mut self) {
        self.used = self.width;
    }
}

/// Index bits of the direct-mapped store-granule table. 2^15 granules
/// cover a 256KB store working set collision-free; colliding granules
/// spill to an exact overflow map, so capacity is a speed knob only.
const STORE_BITS: u32 = 15;

/// Empty-slot sentinel. Granules are `addr >> 3`, so they never exceed
/// `2^61 - 1` and `u64::MAX` is unreachable as a tag.
const STORE_EMPTY: u64 = u64::MAX;

/// Completion times of the youngest store to each 8-byte granule
/// (store-to-load forwarding). The fast variant is a direct-mapped
/// tag+time table (Fibonacci-hashed like `mem.rs`) with an overflow map
/// for colliding granules — every granule lives in exactly one of the
/// two, so lookups are exact and results match the plain `HashMap` of the
/// retained slow path bit for bit.
#[derive(Debug)]
enum StoreTable {
    Fast {
        tags: Box<[u64]>,
        times: Box<[u64]>,
        overflow: HashMap<u64, u64>,
    },
    Slow(HashMap<u64, u64>),
}

impl StoreTable {
    fn new(fast: bool) -> StoreTable {
        if fast {
            StoreTable::Fast {
                tags: vec![STORE_EMPTY; 1 << STORE_BITS].into_boxed_slice(),
                times: vec![0; 1 << STORE_BITS].into_boxed_slice(),
                overflow: HashMap::new(),
            }
        } else {
            StoreTable::Slow(HashMap::new())
        }
    }

    #[inline]
    fn slot(granule: u64) -> usize {
        (granule.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - STORE_BITS)) as usize
    }

    #[inline]
    fn get(&self, granule: u64) -> Option<u64> {
        match self {
            StoreTable::Fast {
                tags,
                times,
                overflow,
            } => {
                let ix = StoreTable::slot(granule);
                if tags[ix] == granule {
                    Some(times[ix])
                } else {
                    overflow.get(&granule).copied()
                }
            }
            StoreTable::Slow(map) => map.get(&granule).copied(),
        }
    }

    #[inline]
    fn insert(&mut self, granule: u64, time: u64) {
        match self {
            StoreTable::Fast {
                tags,
                times,
                overflow,
            } => {
                let ix = StoreTable::slot(granule);
                if tags[ix] == granule || tags[ix] == STORE_EMPTY {
                    tags[ix] = granule;
                    times[ix] = time;
                } else {
                    // Slot claimed by another granule: exact spill. Never
                    // evict — losing a forwarding time would change cycle
                    // counts.
                    overflow.insert(granule, time);
                }
            }
            StoreTable::Slow(map) => {
                map.insert(granule, time);
            }
        }
    }

    /// Serializes the table contents exactly as stored — occupied
    /// direct-mapped slots by index plus the overflow map — rather than
    /// as an insert-replay: which of the two homes a granule lives in
    /// depends on probe order, so replaying inserts into a fresh table
    /// could place entries differently and de-synchronize a re-save.
    /// Map-ordered sections are sorted by granule for deterministic bytes.
    fn save_state(&self, w: &mut crate::snapshot::Writer) {
        match self {
            StoreTable::Fast {
                tags,
                times,
                overflow,
            } => {
                w.u8(0);
                let occupied = tags.iter().filter(|&&t| t != STORE_EMPTY).count();
                w.u64(occupied as u64);
                for (ix, &tag) in tags.iter().enumerate() {
                    if tag == STORE_EMPTY {
                        continue;
                    }
                    w.u32(ix as u32);
                    w.u64(tag);
                    w.u64(times[ix]);
                }
                let mut spills: Vec<(u64, u64)> =
                    overflow.iter().map(|(&g, &t)| (g, t)).collect();
                spills.sort_unstable();
                w.u64(spills.len() as u64);
                for (g, t) in spills {
                    w.u64(g);
                    w.u64(t);
                }
            }
            StoreTable::Slow(map) => {
                w.u8(1);
                let mut pairs: Vec<(u64, u64)> = map.iter().map(|(&g, &t)| (g, t)).collect();
                pairs.sort_unstable();
                w.u64(pairs.len() as u64);
                for (g, t) in pairs {
                    w.u64(g);
                    w.u64(t);
                }
            }
        }
    }

    /// Parses a [`StoreTable::save_state`] section, validating the
    /// variant and slot indexes without mutating anything.
    fn read_state(&self, r: &mut crate::snapshot::Reader<'_>) -> Result<StoreState> {
        let variant = r.u8()?;
        match (variant, self) {
            (0, StoreTable::Fast { .. }) => {
                let n = r.len_prefix(20)?;
                let mut slots = Vec::with_capacity(n);
                for _ in 0..n {
                    let ix = r.u32()? as usize;
                    if ix >= 1 << STORE_BITS {
                        return Err(SimError::Snapshot(format!(
                            "snapshot corrupt: store-table slot {ix} out of range"
                        )));
                    }
                    slots.push((ix, r.u64()?, r.u64()?));
                }
                let n = r.len_prefix(16)?;
                let mut spills = Vec::with_capacity(n);
                for _ in 0..n {
                    spills.push((r.u64()?, r.u64()?));
                }
                Ok(StoreState::Fast { slots, spills })
            }
            (1, StoreTable::Slow(_)) => {
                let n = r.len_prefix(16)?;
                let mut pairs = Vec::with_capacity(n);
                for _ in 0..n {
                    pairs.push((r.u64()?, r.u64()?));
                }
                Ok(StoreState::Slow(pairs))
            }
            _ => Err(SimError::Snapshot(format!(
                "snapshot corrupt: store-table variant tag {variant} does not match the \
                 configured fast_path (the timing-configuration fingerprint should have \
                 caught this)"
            ))),
        }
    }

    /// Installs a parsed state (resetting to empty first).
    fn apply_state(&mut self, state: StoreState) {
        match (self, state) {
            (
                StoreTable::Fast {
                    tags,
                    times,
                    overflow,
                },
                StoreState::Fast { slots, spills },
            ) => {
                tags.fill(STORE_EMPTY);
                times.fill(0);
                overflow.clear();
                for (ix, tag, time) in slots {
                    tags[ix] = tag;
                    times[ix] = time;
                }
                overflow.extend(spills);
            }
            (StoreTable::Slow(map), StoreState::Slow(pairs)) => {
                map.clear();
                map.extend(pairs);
            }
            _ => unreachable!("variant validated in read_state"),
        }
    }
}

/// Parsed, configuration-validated mutable state of a simulator (see
/// [`Simulator::read_state`]); applied with [`Simulator::apply_state`].
#[derive(Debug)]
pub(crate) struct SimulatorState {
    machine: crate::machine::MachineState,
    /// Fetch slot allocator `(cycle, used)`.
    fetch: (u64, u64),
    /// Commit slot allocator `(cycle, used)`.
    commit: (u64, u64),
    rob: Vec<u64>,
    rs: Vec<u64>,
    reg_ready: [u64; dise_isa::reg::NUM_REGS],
    store: StoreState,
    last_commit: u64,
    seq: u64,
    stats: SimStats,
    hierarchy: crate::cache::HierarchyState,
    bpred: crate::bpred::BpredState,
}

/// Serializes every [`SimStats`] counter in declaration order.
fn save_sim_stats(stats: &SimStats, w: &mut crate::snapshot::Writer) {
    w.u64(stats.cycles);
    w.u64(stats.app_insts);
    w.u64(stats.total_insts);
    for c in [stats.icache, stats.dcache, stats.l2] {
        w.u64(c.accesses);
        w.u64(c.misses);
    }
    w.u64(stats.bpred.cond_predictions);
    w.u64(stats.bpred.cond_mispredicts);
    w.u64(stats.bpred.target_mispredicts);
    w.u64(stats.redirects);
    w.u64(stats.dise_stall_cycles);
    w.u64(stats.expansions);
    let e = &stats.engine;
    for v in [
        e.inspected,
        e.expansions,
        e.replacement_insts,
        e.pt_misses,
        e.rt_misses,
        e.composed_fills,
        e.stall_cycles,
    ] {
        w.u64(v);
    }
}

/// Parses a [`save_sim_stats`] section.
fn read_sim_stats(r: &mut crate::snapshot::Reader<'_>) -> Result<SimStats> {
    let cache = |r: &mut crate::snapshot::Reader<'_>| -> Result<CacheStats> {
        Ok(CacheStats {
            accesses: r.u64()?,
            misses: r.u64()?,
        })
    };
    Ok(SimStats {
        cycles: r.u64()?,
        app_insts: r.u64()?,
        total_insts: r.u64()?,
        icache: cache(r)?,
        dcache: cache(r)?,
        l2: cache(r)?,
        bpred: BpredStats {
            cond_predictions: r.u64()?,
            cond_mispredicts: r.u64()?,
            target_mispredicts: r.u64()?,
        },
        redirects: r.u64()?,
        dise_stall_cycles: r.u64()?,
        expansions: r.u64()?,
        engine: EngineStats {
            inspected: r.u64()?,
            expansions: r.u64()?,
            replacement_insts: r.u64()?,
            pt_misses: r.u64()?,
            rt_misses: r.u64()?,
            composed_fills: r.u64()?,
            stall_cycles: r.u64()?,
        },
    })
}

/// Parsed mutable state of the store-to-load forwarding table.
#[derive(Debug)]
enum StoreState {
    Fast {
        /// `(slot, granule tag, completion time)` for occupied slots.
        slots: Vec<(usize, u64, u64)>,
        /// Granule-sorted overflow entries.
        spills: Vec<(u64, u64)>,
    },
    Slow(Vec<(u64, u64)>),
}

/// An in-flight window (ROB or RS) of timestamps: a fixed ring that never
/// reallocates on the fast path, the original `VecDeque` on the retained
/// slow path.
#[derive(Debug)]
enum Window {
    Fast(Ring),
    Slow(VecDeque<u64>),
}

impl Window {
    fn new(fast: bool, cap: usize) -> Window {
        if fast {
            Window::Fast(Ring::with_capacity(cap))
        } else {
            Window::Slow(VecDeque::with_capacity(cap))
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Window::Fast(r) => r.len(),
            Window::Slow(q) => q.len(),
        }
    }

    #[inline]
    fn push(&mut self, v: u64) {
        match self {
            Window::Fast(r) => r.push(v),
            Window::Slow(q) => q.push_back(v),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<u64> {
        match self {
            Window::Fast(r) => r.pop(),
            Window::Slow(q) => q.pop_front(),
        }
    }

    /// Serializes the in-flight timestamps oldest-first.
    fn save_state(&self, w: &mut crate::snapshot::Writer) {
        w.u64(self.len() as u64);
        match self {
            Window::Fast(r) => {
                for v in r.iter() {
                    w.u64(v);
                }
            }
            Window::Slow(q) => {
                for &v in q {
                    w.u64(v);
                }
            }
        }
    }

    /// Parses a [`Window::save_state`] section (occupancy must fit `cap`).
    fn read_state(
        r: &mut crate::snapshot::Reader<'_>,
        cap: usize,
        what: &str,
    ) -> Result<Vec<u64>> {
        let n = r.len_prefix(8)?;
        if n > cap {
            return Err(SimError::Snapshot(format!(
                "snapshot corrupt: {what} occupancy {n} exceeds the configured capacity {cap}"
            )));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(r.u64()?);
        }
        Ok(values)
    }

    /// Replaces the window contents with `values` (oldest first).
    fn apply_state(&mut self, values: &[u64]) {
        while self.pop().is_some() {}
        for &v in values {
            self.push(v);
        }
    }
}

/// The timing simulator. Owns the functional oracle machine.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    machine: Machine,
    mem: MemoryHierarchy,
    bpred: BranchPredictor,
    fetch: SlotAlloc,
    commit: SlotAlloc,
    /// Commit times of in-flight instructions (ROB occupancy).
    rob: Window,
    /// Issue times of in-flight instructions (RS occupancy).
    rs: Window,
    /// Completion time of the last producer of each register.
    reg_ready: [u64; dise_isa::reg::NUM_REGS],
    /// Completion time of the last store to each 8-byte granule
    /// (store-to-load forwarding).
    store_ready: StoreTable,
    last_commit: u64,
    stats: SimStats,
    // Per-instruction configuration, hoisted out of `account` (the config
    // struct is cold-cache by the time the oracle step returns).
    frontend_depth: u64,
    rob_cap: usize,
    rs_cap: usize,
    l1_latency: u64,
    stall_on_expand: bool,
    // ---- telemetry ----------------------------------------------------
    /// Dynamic instruction sequence number (events and anomaly reports).
    seq: u64,
    /// Pipeline event ring; `None` when tracing is disabled.
    trace: Option<EventRing>,
    /// Commit-gap watchdog threshold (0 = disabled).
    watchdog: u64,
    /// Watchdog verdict raised inside `account`, consumed by `run`.
    pending_anomaly: Option<String>,
    /// The last anomaly report, kept for programmatic inspection.
    anomaly: Option<Box<AnomalyReport>>,
    /// Shadow functional oracle stepped in lockstep with the primary
    /// machine; any divergence of the per-step reports is an anomaly.
    shadow: Option<Box<Machine>>,
    /// Exact PC of the anomaly trigger, recorded where it is known (the
    /// divergent step, the wedged commit); [`Simulator::raise_anomaly`]
    /// falls back to the machine PC when unset.
    anomaly_pc: Option<u64>,
    /// Marks anomaly reports raised inside a time-travel replay window
    /// (see `dise_bench::checkpoint`).
    replay: bool,
}

impl Simulator {
    /// Creates a simulator over a loaded machine.
    pub fn new(config: SimConfig, machine: Machine) -> Simulator {
        let frontend_extra = match config.expansion_cost {
            ExpansionCost::ExtraStage => 1,
            _ => 0,
        };
        let mut config = config;
        config.frontend_depth += frontend_extra;
        Simulator {
            mem: MemoryHierarchy::new(config.mem),
            bpred: BranchPredictor::new(config.bpred),
            fetch: SlotAlloc::new(config.width),
            commit: SlotAlloc::new(config.width),
            rob: Window::new(config.fast_path, config.rob_size),
            rs: Window::new(config.fast_path, config.rs_size),
            reg_ready: [0; dise_isa::reg::NUM_REGS],
            store_ready: StoreTable::new(config.fast_path),
            last_commit: 0,
            stats: SimStats::default(),
            frontend_depth: config.frontend_depth,
            rob_cap: config.rob_size,
            rs_cap: config.rs_size,
            l1_latency: config.mem.l1_latency,
            stall_on_expand: config.expansion_cost == ExpansionCost::StallPerExpansion,
            seq: 0,
            trace: (config.trace_last > 0).then(|| EventRing::new(config.trace_last)),
            watchdog: config.watchdog,
            pending_anomaly: None,
            anomaly: None,
            shadow: None,
            anomaly_pc: None,
            replay: false,
            config,
            machine,
        }
    }

    /// The oracle machine (e.g. to read final register state).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the oracle machine (e.g. to initialize dedicated
    /// registers before running).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Serializes the simulator's mutable state (see [`crate::snapshot`]).
    /// The timing configuration is recorded as a fingerprint of its
    /// `Debug` form — the same result-affecting-fields-only rendering the
    /// figure harness cache keys on, so telemetry knobs do not perturb
    /// it. Telemetry state (trace ring, watchdog, shadow oracle) is
    /// observability-only and not serialized.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::Writer) {
        w.u64(crate::arena::debug_fingerprint(&self.config));
        self.machine.save_state(w);
        for alloc in [&self.fetch, &self.commit] {
            w.u64(alloc.cycle);
            w.u64(alloc.used);
        }
        self.rob.save_state(w);
        self.rs.save_state(w);
        for &v in &self.reg_ready {
            w.u64(v);
        }
        self.store_ready.save_state(w);
        w.u64(self.last_commit);
        w.u64(self.seq);
        save_sim_stats(&self.stats, w);
        self.mem.save_state(w);
        self.bpred.save_state(w);
    }

    /// Parses a [`Simulator::save_state`] section, checking the recorded
    /// fingerprints against this simulator's configuration and scenario.
    /// Mutates nothing.
    pub(crate) fn read_state(
        &self,
        r: &mut crate::snapshot::Reader<'_>,
    ) -> Result<SimulatorState> {
        crate::snapshot::check_fingerprint(
            "timing configuration",
            r.u64()?,
            crate::arena::debug_fingerprint(&self.config),
        )?;
        let machine = self.machine.read_state(r)?;
        let fetch = (r.u64()?, r.u64()?);
        let commit = (r.u64()?, r.u64()?);
        let rob = Window::read_state(r, self.rob_cap, "ROB")?;
        let rs = Window::read_state(r, self.rs_cap, "RS")?;
        let mut reg_ready = [0u64; dise_isa::reg::NUM_REGS];
        for v in reg_ready.iter_mut() {
            *v = r.u64()?;
        }
        let store = self.store_ready.read_state(r)?;
        let last_commit = r.u64()?;
        let seq = r.u64()?;
        let stats = read_sim_stats(r)?;
        let hierarchy = self.mem.read_state(r)?;
        let bpred = self.bpred.read_state(r)?;
        Ok(SimulatorState {
            machine,
            fetch,
            commit,
            rob,
            rs,
            reg_ready,
            store,
            last_commit,
            seq,
            stats,
            hierarchy,
            bpred,
        })
    }

    /// Installs a parsed state. The only fallible step — the machine's
    /// engine import — runs first and validates before mutating, so a
    /// failure leaves the simulator untouched. The shadow oracle (if one
    /// was enabled) is dropped: it tracks the primary machine from load,
    /// and a restored primary has nothing for it to have shadowed.
    pub(crate) fn apply_state(&mut self, state: SimulatorState) -> Result<()> {
        self.machine.apply_state(state.machine)?;
        self.fetch.cycle = state.fetch.0;
        self.fetch.used = state.fetch.1;
        self.commit.cycle = state.commit.0;
        self.commit.used = state.commit.1;
        self.rob.apply_state(&state.rob);
        self.rs.apply_state(&state.rs);
        self.reg_ready = state.reg_ready;
        self.store_ready.apply_state(state.store);
        self.last_commit = state.last_commit;
        self.seq = state.seq;
        self.stats = state.stats;
        self.mem.apply_state(state.hierarchy);
        self.bpred.apply_state(state.bpred);
        self.pending_anomaly = None;
        self.shadow = None;
        self.anomaly_pc = None;
        self.replay = false;
        Ok(())
    }

    /// Attaches a shadow functional oracle, stepped in lockstep with the
    /// primary machine through the same [`Machine::step_into`] path. Any
    /// divergence between the two per-step reports aborts the run with
    /// [`SimError::Anomaly`] and dumps an [`AnomalyReport`]. The shadow
    /// must be loaded and initialized exactly like the primary (same
    /// program, registers, attached engine); build it with the *other*
    /// functional fast-path setting to cross-check the two
    /// implementations.
    pub fn attach_shadow(&mut self, shadow: Machine) {
        self.shadow = Some(Box::new(shadow));
    }

    /// The attached shadow oracle, if any (checkpointing snapshots it at
    /// slice boundaries so a replay can re-arm it in the boundary state).
    pub fn shadow(&self) -> Option<&Machine> {
        self.shadow.as_deref()
    }

    /// Whether a shadow oracle is attached.
    pub fn has_shadow(&self) -> bool {
        self.shadow.is_some()
    }

    /// Detaches and returns the shadow oracle. A restore drops any
    /// attached shadow (see [`Simulator::apply_state`]); callers that
    /// want to keep it across a restore take it out first and re-attach
    /// after resetting its state.
    pub fn take_shadow(&mut self) -> Option<Machine> {
        self.shadow.take().map(|b| *b)
    }

    /// (Re)arms the pipeline event ring mid-run with capacity `cap`,
    /// discarding any previous ring contents. Time-travel replay uses
    /// this to trace the replayed window at full detail even when the
    /// original run traced nothing.
    pub fn arm_trace(&mut self, cap: usize) {
        self.trace = Some(EventRing::new(cap));
    }

    /// Marks (or unmarks) this simulator as replaying a checkpoint
    /// window: anomaly reports raised while set carry `replay: true`.
    pub fn set_replay(&mut self, replay: bool) {
        self.replay = replay;
    }

    /// The last anomaly report, if one fired this run.
    pub fn anomaly(&self) -> Option<&AnomalyReport> {
        self.anomaly.as_deref()
    }

    /// The pipeline events currently in the trace ring, oldest first
    /// (empty when tracing is disabled).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.as_ref().map(EventRing::events).unwrap_or_default()
    }

    /// A live snapshot of every registered statistic: pipeline (`sim.*`),
    /// caches (`l1i.*`, `l1d.*`, `l2.*`), branch predictor (`bpred.*`)
    /// and DISE engine (`engine.*`) counters, name-sorted. Callable
    /// mid-run (anomaly dumps use it) or after [`Simulator::run`].
    pub fn stats_registry(&self) -> StatsRegistry {
        let mut snapshot = self.stats;
        let (total, app) = self.machine.inst_counts();
        snapshot.total_insts = total;
        snapshot.app_insts = app;
        snapshot.cycles = self.last_commit.max(1);
        snapshot.icache = self.mem.icache_stats();
        snapshot.dcache = self.mem.dcache_stats();
        snapshot.l2 = self.mem.l2_stats();
        snapshot.bpred = self.bpred.stats();
        if let Some(e) = self.machine.engine() {
            snapshot.engine = e.stats();
            snapshot.expansions = snapshot.engine.expansions;
        }
        snapshot.registry()
    }

    /// Builds, records and ships an anomaly report; returns the error
    /// the run aborts with. The report goes to the installed
    /// observability sink (tagged with the worker's cell context) when
    /// one exists; with no sink it prints to stderr as before.
    fn raise_anomaly(&mut self, reason: String) -> SimError {
        fn reg_file(m: &Machine) -> Vec<u64> {
            (0..dise_isa::reg::NUM_REGS as u8)
                .map(|i| m.reg(dise_isa::Reg::from_index(i)))
                .collect()
        }
        let report = AnomalyReport {
            reason: reason.clone(),
            seq: self.seq,
            rob_occupancy: self.rob.len(),
            rs_occupancy: self.rs.len(),
            registry: self.stats_registry(),
            events: self.trace_events(),
            pc: self.anomaly_pc.take().unwrap_or_else(|| self.machine.pc().0),
            regs: reg_file(&self.machine),
            shadow_regs: self.shadow.as_deref().map(reg_file),
            replay: self.replay,
        };
        if !dise_obs::ship_anomaly(&report.json_payload()) {
            eprintln!("{report}");
        }
        self.anomaly = Some(Box::new(report));
        SimError::Anomaly(reason)
    }

    /// Steps the shadow oracle and compares its report with the
    /// primary's. Returns the divergence description, if any.
    fn shadow_step(&mut self, info: &StepInfo, out: &mut StepInfo) -> Result<Option<String>> {
        let Some(shadow) = self.shadow.as_mut() else {
            return Ok(None);
        };
        if !shadow.step_into(out)? {
            self.anomaly_pc = Some(info.pc);
            return Ok(Some(format!(
                "oracle divergence at seq {}: shadow halted, primary retired {:?} at pc {:#x}",
                self.seq, info.inst.op, info.pc
            )));
        }
        if out != info {
            self.anomaly_pc = Some(info.pc);
            return Ok(Some(format!(
                "oracle divergence at seq {}: primary {info:?} vs shadow {out:?}",
                self.seq
            )));
        }
        Ok(None)
    }

    /// Runs until the program halts or `max_insts` dynamic instructions
    /// have committed.
    ///
    /// # Errors
    ///
    /// Propagates functional-machine errors; returns
    /// [`SimError::OutOfFuel`] if the budget is exhausted first, and
    /// [`SimError::Anomaly`] if the watchdog fires or an attached shadow
    /// oracle diverges (the report is dumped to stderr and kept in
    /// [`Simulator::anomaly`]).
    pub fn run(&mut self, max_insts: u64) -> Result<SimResult> {
        if self.config.fast_path && self.shadow.is_none() {
            // In-place oracle stepping: one caller-owned StepInfo reused
            // across the whole run instead of a per-instruction
            // `Option<StepInfo>` moved through the return value. This is
            // the hot loop — the shadow-oracle variant lives below so
            // lockstep checking costs nothing here.
            let mut info = StepInfo::default();
            for _ in 0..max_insts {
                if !self.machine.step_into(&mut info)? {
                    return Ok(self.finish(true));
                }
                self.account(&info);
                if let Some(reason) = self.pending_anomaly.take() {
                    return Err(self.raise_anomaly(reason));
                }
            }
        } else {
            let mut shadow_info = StepInfo::default();
            for _ in 0..max_insts {
                let mut info = StepInfo::default();
                let stepped = if self.config.fast_path {
                    self.machine.step_into(&mut info)?
                } else {
                    match self.machine.step()? {
                        Some(i) => {
                            info = i;
                            true
                        }
                        None => false,
                    }
                };
                if !stepped {
                    return Ok(self.finish(true));
                }
                if let Some(diverged) = self.shadow_step(&info, &mut shadow_info)? {
                    return Err(self.raise_anomaly(diverged));
                }
                self.account(&info);
                if let Some(reason) = self.pending_anomaly.take() {
                    return Err(self.raise_anomaly(reason));
                }
            }
        }
        if self.machine.halted() {
            Ok(self.finish(true))
        } else {
            if self.trace.is_some() || self.watchdog > 0 {
                // Fuel exhaustion with telemetry on: leave an evidence
                // trail instead of burning the budget silently.
                let report = self.raise_anomaly(format!(
                    "out of fuel after {max_insts} dynamic instructions without halting"
                ));
                // The run error stays OutOfFuel — the dump is advisory.
                let _ = report;
            }
            Err(SimError::OutOfFuel)
        }
    }

    fn finish(&mut self, halted: bool) -> SimResult {
        let (total, app) = self.machine.inst_counts();
        self.stats.total_insts = total;
        self.stats.app_insts = app;
        self.stats.cycles = self.last_commit.max(1);
        self.stats.icache = self.mem.icache_stats();
        self.stats.dcache = self.mem.dcache_stats();
        self.stats.l2 = self.mem.l2_stats();
        self.stats.bpred = self.bpred.stats();
        if let Some(e) = self.machine.engine() {
            self.stats.engine = e.stats();
            self.stats.expansions = self.stats.engine.expansions;
        }
        SimResult {
            stats: self.stats,
            halted,
        }
    }

    /// Accounts one retired dynamic instruction.
    fn account(&mut self, info: &StepInfo) {
        // ---- fetch ----------------------------------------------------
        let mut fetch_ready = 0u64;

        // DISE PT/RT miss: pipeline flush + fixed stall (§2.3).
        if info.dise_stall > 0 {
            self.stats.dise_stall_cycles += info.dise_stall;
            fetch_ready = self.fetch.cycle + info.dise_stall;
            self.fetch.break_group();
        }

        // Structural back-pressure: ROB and RS occupancy throttle fetch.
        // The `*_wait` slack values feed the event trace only.
        let mut rob_wait = 0u64;
        let mut rs_wait = 0u64;
        if self.rob.len() >= self.rob_cap {
            let freed = self.rob.pop().expect("non-empty");
            let until = freed.saturating_sub(self.frontend_depth);
            rob_wait = until.saturating_sub(fetch_ready.max(self.fetch.cycle));
            fetch_ready = fetch_ready.max(until);
        }
        if self.rs.len() >= self.rs_cap {
            let freed = self.rs.pop().expect("non-empty");
            let until = freed.saturating_sub(self.frontend_depth);
            rs_wait = until.saturating_sub(fetch_ready.max(self.fetch.cycle));
            fetch_ready = fetch_ready.max(until);
        }

        let mut fetch_time = self.fetch.alloc(fetch_ready);

        // Stall-per-expansion engine placement: the PT/RT read costs one
        // cycle per actual expansion, delaying everything behind the
        // trigger by a cycle.
        let expand_bubble = info.expanded && self.stall_on_expand;
        if expand_bubble {
            self.fetch.cycle = fetch_time + 1;
            self.fetch.used = 0;
        }

        // I-cache access for newly fetched application items (replacement
        // instructions stream from the RT and skip the I-cache).
        let mut icache_wait = 0u64;
        if info.first_of_fetch {
            let latency = self.mem.ifetch(info.pc, info.fetch_size);
            if latency > self.l1_latency {
                // Miss: fetch stalls until the fill returns.
                icache_wait = latency - self.l1_latency;
                fetch_time += icache_wait;
                self.fetch.cycle = fetch_time;
                self.fetch.used = 1;
            }
        }

        // ---- dispatch / issue / complete -------------------------------
        let dispatch = fetch_time + self.frontend_depth;
        let mut ready = dispatch + 1;
        for src in timing_sources(&info.inst) {
            ready = ready.max(self.reg_ready[src.index()]);
        }
        let class = info.inst.op.class();
        // Loads wait for the youngest older store to the same granule
        // (perfect memory-dependence speculation with forwarding).
        if class == OpClass::Load {
            if let Some(addr) = info.mem_addr {
                if let Some(t) = self.store_ready.get(addr >> 3) {
                    ready = ready.max(t);
                }
            }
        }
        let issue = ready;
        let complete = match class {
            OpClass::Load => issue + self.mem.daccess(info.mem_addr.unwrap_or(0)),
            OpClass::Store => {
                // Stores retire from the store queue; touch the D-cache tags
                // for later loads but do not stall the pipeline.
                if let Some(addr) = info.mem_addr {
                    self.mem.daccess(addr);
                    self.store_ready.insert(addr >> 3, issue + 1);
                }
                issue + 1
            }
            _ => issue + exec_latency(class),
        };
        if let Some(dest) = info.inst.dest() {
            if !dest.is_zero() {
                self.reg_ready[dest.index()] = complete;
            }
        }

        // ---- control flow ----------------------------------------------
        let mut redirect = false;
        if info.dise_taken {
            // Taken DISE-internal branch: interpreted as a misprediction
            // (§2.2).
            redirect = true;
        } else if let Some(taken) = info.taken {
            let target = info.target.unwrap_or(0);
            if info.predicted {
                let correct = match class {
                    OpClass::CondBranch => self.bpred.cond_branch(info.pc, taken, target),
                    OpClass::UncondBranch => {
                        let push = (info.inst.op == dise_isa::Op::Bsr)
                            .then(|| info.pc + info.fetch_size);
                        self.bpred.uncond_branch(info.pc, target, push)
                    }
                    OpClass::IndirectJump => {
                        if info.inst.op == dise_isa::Op::Ret {
                            self.bpred.ret(target)
                        } else {
                            let push = (info.inst.op == dise_isa::Op::Jsr)
                                .then(|| info.pc + info.fetch_size);
                            self.bpred.indirect(info.pc, target, push)
                        }
                    }
                    _ => true,
                };
                if !correct {
                    redirect = true;
                } else if taken {
                    // Correctly-predicted taken branch ends the fetch group.
                    self.fetch.break_group();
                }
            } else if taken {
                // Non-trigger replacement branches are effectively
                // predicted not-taken: taken ones redirect (§2.2).
                redirect = true;
            }
        }
        if redirect {
            self.stats.redirects += 1;
            // Fetch resumes after the branch resolves.
            self.fetch.cycle = self.fetch.cycle.max(complete);
            self.fetch.break_group();
        }

        // ---- commit -----------------------------------------------------
        let commit = self.commit.alloc(complete.max(self.last_commit));

        // Commit-gap watchdog: in this timestamp-dataflow model every
        // accounted instruction commits, so a wedged pipeline shows up as
        // a pathological gap between consecutive commit times while older
        // instructions are still in flight.
        if self.watchdog != 0
            && commit.saturating_sub(self.last_commit) > self.watchdog
            && self.rob.len() > 0
            && self.pending_anomaly.is_none()
        {
            self.anomaly_pc = Some(info.pc);
            self.pending_anomaly = Some(format!(
                "watchdog: no commit for {} cycles (threshold {}) with {} ROB entries in flight",
                commit - self.last_commit,
                self.watchdog,
                self.rob.len(),
            ));
        }

        // ---- event trace ------------------------------------------------
        // One `is_some` branch per retired instruction when disabled;
        // `timing_speed` verifies the disabled-path overhead stays ≤ 2%.
        if self.trace.is_some() {
            self.record_events(
                info,
                rob_wait,
                rs_wait,
                icache_wait,
                expand_bubble,
                [fetch_time, dispatch, issue, complete, commit],
                redirect,
            );
        }
        self.seq += 1;

        self.last_commit = commit.max(self.last_commit);
        self.rob.push(commit);
        self.rs.push(issue + 1);
    }

    /// Pushes the trace events for one accounted instruction. Out of
    /// line so the disabled-tracing path pays only the `is_some` check.
    #[allow(clippy::too_many_arguments)]
    fn record_events(
        &mut self,
        info: &StepInfo,
        rob_wait: u64,
        rs_wait: u64,
        icache_wait: u64,
        expand_bubble: bool,
        times: [u64; 5],
        redirect: bool,
    ) {
        let [fetch_time, dispatch, issue, complete, commit] = times;
        let seq = self.seq;
        let Some(ring) = self.trace.as_mut() else {
            return;
        };
        let ev = |cycle: u64, kind: TraceKind| TraceEvent {
            cycle,
            seq,
            pc: info.pc,
            disepc: info.disepc,
            kind,
        };
        let stall = |cause: StallCause, cycles: u64| TraceKind::Stall { cause, cycles };
        if info.dise_stall > 0 {
            ring.push(ev(fetch_time, stall(StallCause::DiseMiss, info.dise_stall)));
        }
        if rob_wait > 0 {
            ring.push(ev(fetch_time, stall(StallCause::RobFull, rob_wait)));
        }
        if rs_wait > 0 {
            ring.push(ev(fetch_time, stall(StallCause::RsFull, rs_wait)));
        }
        if icache_wait > 0 {
            ring.push(ev(fetch_time, stall(StallCause::IcacheMiss, icache_wait)));
        }
        if expand_bubble {
            ring.push(ev(fetch_time, stall(StallCause::ExpandBubble, 1)));
        }
        if info.first_of_fetch {
            ring.push(ev(fetch_time, TraceKind::Fetch { size: info.fetch_size as u8 }));
        }
        if info.expanded {
            ring.push(ev(fetch_time, TraceKind::Expand { len: info.expansion_len }));
        }
        ring.push(ev(dispatch, TraceKind::Dispatch));
        ring.push(ev(issue, TraceKind::Issue));
        ring.push(ev(complete, TraceKind::Writeback));
        if redirect {
            ring.push(ev(complete, TraceKind::Redirect));
        }
        ring.push(ev(commit, TraceKind::Commit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_core::{dsl, DiseEngine, EngineConfig};
    use dise_isa::{Assembler, Program, Reg};
    use std::collections::BTreeMap;

    #[test]
    fn slot_alloc_width_one_serializes() {
        let mut a = SlotAlloc::new(1);
        // Every allocation at width 1 lands in its own cycle.
        assert_eq!(a.alloc(0), 0);
        assert_eq!(a.alloc(0), 1);
        assert_eq!(a.alloc(0), 2);
        // A later ready time jumps forward and resets the group.
        assert_eq!(a.alloc(10), 10);
        assert_eq!(a.alloc(0), 11);
    }

    #[test]
    fn slot_alloc_ready_in_the_past_is_ignored() {
        let mut a = SlotAlloc::new(4);
        assert_eq!(a.alloc(5), 5);
        // `ready` below the current cycle must not move the clock back;
        // the group keeps filling at cycle 5.
        assert_eq!(a.alloc(0), 5);
        assert_eq!(a.alloc(3), 5);
        assert_eq!(a.alloc(0), 5);
        // Width exhausted: the fifth slot spills into cycle 6.
        assert_eq!(a.alloc(0), 6);
    }

    #[test]
    fn slot_alloc_break_group_at_boundary() {
        let mut a = SlotAlloc::new(4);
        // Exactly fill a group, break it, and break it again while empty:
        // a second break in the same cycle must not skip a cycle.
        for _ in 0..4 {
            assert_eq!(a.alloc(0), 0);
        }
        a.break_group();
        a.break_group();
        assert_eq!(a.alloc(0), 1, "double break still advances one cycle");
        a.break_group();
        assert_eq!(a.alloc(0), 2, "break after one slot starts a new cycle");
    }

    #[test]
    fn store_table_collisions_are_exact() {
        let mut fast = StoreTable::new(true);
        let mut slow = StoreTable::new(false);
        // Granules engineered to collide in the direct-mapped table: the
        // multiplicative hash keeps only STORE_BITS top bits, so sweep
        // until two slots collide, then verify both kept exact times.
        let g0 = 1u64;
        let mut g1 = 2u64;
        while StoreTable::slot(g1) != StoreTable::slot(g0) {
            g1 += 1;
        }
        for (i, g) in [g0, g1, g0, g1].into_iter().enumerate() {
            fast.insert(g, 100 + i as u64);
            slow.insert(g, 100 + i as u64);
        }
        for g in [g0, g1, 777u64] {
            assert_eq!(fast.get(g), slow.get(g), "granule {g}");
        }
        assert_eq!(fast.get(g0), Some(102));
        assert_eq!(fast.get(g1), Some(103));
    }

    fn asm(listing: &str) -> Program {
        Assembler::new(Program::segment_base(Program::TEXT_SEGMENT))
            .assemble(listing)
            .unwrap()
    }

    fn counted_loop(n: u32) -> Program {
        asm(&format!(
            "       lda r1, {n}(r31)
             loop:  subq r1, #1, r1
                    bne r1, loop
                    halt"
        ))
    }

    fn run(config: SimConfig, p: &Program) -> SimStats {
        let mut sim = Simulator::new(config, Machine::load(p));
        sim.run(10_000_000).unwrap().stats
    }

    #[test]
    fn ipc_bounded_by_width() {
        let p = counted_loop(2000);
        let s = run(SimConfig::default(), &p);
        assert!(s.ipc() <= 4.0);
        assert!(s.ipc() > 0.5, "IPC {} unexpectedly low", s.ipc());
    }

    #[test]
    fn wider_machines_are_not_slower() {
        // Independent chains to give wide machines something to do.
        let body: String = (1..=12)
            .map(|r| format!("addq r{r}, #1, r{r}\n"))
            .collect();
        let p = asm(&format!(
            "       lda r20, 300(r31)
             loop:  {body}
                    subq r20, #1, r20
                    bne r20, loop
                    halt"
        ));
        let narrow = run(SimConfig::default().with_width(2), &p);
        let wide = run(SimConfig::default().with_width(8), &p);
        assert!(
            wide.cycles < narrow.cycles,
            "8-wide {} !< 2-wide {}",
            wide.cycles,
            narrow.cycles
        );
    }

    #[test]
    fn dependent_chain_limits_ilp() {
        // A serial dependence chain cannot exceed IPC 1.
        let chain: String = (0..16).map(|_| "addq r1, #1, r1\n".to_string()).collect();
        let p = asm(&format!(
            "       lda r20, 200(r31)
             loop:  {chain}
                    subq r20, #1, r20
                    bne r20, loop
                    halt"
        ));
        let s = run(SimConfig::default(), &p);
        assert!(s.ipc() <= 1.3, "serial chain IPC {} too high", s.ipc());
    }

    #[test]
    fn small_icache_hurts_large_loops() {
        // A loop body of ~24KB: fits in 32KB, thrashes 8KB.
        let body: String = (0..6000).map(|_| "addq r1, r2, r3\n".to_string()).collect();
        let p = asm(&format!(
            "       lda r20, 20(r31)
             loop:  {body}
                    subq r20, #1, r20
                    bne r20, loop
                    halt"
        ));
        let big = run(SimConfig::default().with_icache_size(Some(32 * 1024)), &p);
        let small = run(SimConfig::default().with_icache_size(Some(8 * 1024)), &p);
        assert!(small.icache.misses > big.icache.misses * 5);
        assert!(
            small.cycles as f64 > big.cycles as f64 * 1.3,
            "8KB {} vs 32KB {}",
            small.cycles,
            big.cycles
        );
        let perfect = run(SimConfig::default().with_icache_size(None), &p);
        assert!(perfect.cycles <= big.cycles);
        assert_eq!(perfect.icache.misses, 0);
    }

    #[test]
    fn mispredictions_cost_frontend_depth() {
        // A data-dependent, hard-to-predict branch: bit 13 of an LCG.
        let p = asm(
            "       lda r1, 12345(r31)
                    lda r20, 2000(r31)
             loop:  mulq r1, #163, r1
                    addq r1, #57, r1
                    srl r1, #13, r2
                    and r2, #1, r2
                    bne r2, skip
                    addq r4, #1, r4
             skip:  subq r20, #1, r20
                    bne r20, loop
                    halt",
        );
        let s = run(SimConfig::default(), &p);
        assert!(
            s.bpred.cond_mispredicts > 100,
            "expected plenty of mispredictions, got {}",
            s.bpred.cond_mispredicts
        );
        // Deeper front end (the +pipe model) costs more on mispredict-heavy
        // code.
        let deeper = run(
            SimConfig::default().with_expansion_cost(ExpansionCost::ExtraStage),
            &p,
        );
        assert!(deeper.cycles > s.cycles);
    }

    fn mfi_engine(p: &Program) -> DiseEngine {
        let set = dsl::parse(
            "P1: T.OPCLASS == store -> R1
             P2: T.OPCLASS == load  -> R1
             R1: srl T.RS, #26, $dr1
                 cmpeq $dr1, $dr2, $dr1
                 beq $dr1, =error
                 T.INSN",
            &[("error".to_string(), p.symbol("error").unwrap())]
                .into_iter()
                .collect::<BTreeMap<_, _>>(),
        )
        .unwrap();
        DiseEngine::with_productions(EngineConfig::default(), set).unwrap()
    }

    fn store_loop() -> Program {
        asm(
            "       lda r20, 2000(r31)
             loop:  stq r20, 0(r2)
                    ldq r3, 0(r2)
                    addq r3, r3, r4
                    subq r20, #1, r20
                    bne r20, loop
                    halt
             error: halt",
        )
    }

    fn run_mfi(cost: ExpansionCost) -> SimStats {
        let p = store_loop();
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.attach_engine(mfi_engine(&p));
        m.set_reg(Reg::dr(2), Program::DATA_SEGMENT);
        let mut sim = Simulator::new(SimConfig::default().with_expansion_cost(cost), m);
        sim.run(10_000_000).unwrap().stats
    }

    #[test]
    fn dise_overhead_ordering() {
        let p = store_loop();
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        let base = {
            let mut sim = Simulator::new(SimConfig::default(), m);
            sim.run(10_000_000).unwrap().stats
        };
        let free = run_mfi(ExpansionCost::Free);
        let stall = run_mfi(ExpansionCost::StallPerExpansion);
        assert!(free.expansions > 3000, "loads+stores expanded");
        assert!(
            free.cycles >= base.cycles,
            "ACF code cannot speed things up"
        );
        assert!(
            stall.cycles > free.cycles,
            "stall-per-expansion must cost more than free ({} !> {})",
            stall.cycles,
            free.cycles
        );
        assert!(free.dise_stall_cycles > 0, "cold PT/RT misses counted");
        assert_eq!(free.app_insts, base.app_insts, "same application work");
        assert!(free.total_insts > base.total_insts);
    }

    #[test]
    fn registry_matches_the_struct_views() {
        let p = store_loop();
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.attach_engine(mfi_engine(&p));
        m.set_reg(Reg::dr(2), Program::DATA_SEGMENT);
        let mut sim = Simulator::new(SimConfig::default(), m);
        let stats = sim.run(10_000_000).unwrap().stats;
        let live = sim.stats_registry();
        // The registry is a view over the same counters the structs hold.
        assert_eq!(live, stats.registry());
        let count = |name: &str| match live.get(name) {
            Some(crate::telemetry::StatValue::Count(v)) => v,
            other => panic!("{name}: {other:?}"),
        };
        assert_eq!(count("sim.cycles"), stats.cycles);
        assert_eq!(count("l1i.misses"), stats.icache.misses);
        assert_eq!(count("l1d.accesses"), stats.dcache.accesses);
        assert_eq!(
            count("bpred.mispredicts"),
            stats.bpred.cond_mispredicts + stats.bpred.target_mispredicts
        );
        assert_eq!(count("engine.expansions"), stats.expansions);
        assert_eq!(count("engine.pt_probes"), stats.engine.inspected);
        assert!(count("engine.pt_probes") > 0, "engine counters flow through");
        // Stable-ordered export: names sorted, so identical runs are
        // byte-identical.
        let names: Vec<&str> = live.entries().iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn trace_knobs_do_not_change_results_or_keys() {
        let p = counted_loop(500);
        let plain = run(SimConfig::default(), &p);
        let traced_config = SimConfig::default().with_trace_last(64).with_watchdog(1_000_000);
        let traced = run(traced_config, &p);
        assert_eq!(plain, traced, "telemetry is observability-only");
        // The Debug form is the harness cache key: telemetry knobs must
        // not appear in it.
        assert_eq!(
            format!("{:?}", SimConfig::default()),
            format!("{traced_config:?}")
        );
    }

    #[test]
    fn trace_ring_is_bounded_and_populated() {
        let p = counted_loop(500);
        let mut sim = Simulator::new(SimConfig::default().with_trace_last(32), Machine::load(&p));
        sim.run(10_000_000).unwrap();
        let events = sim.trace_events();
        assert!(!events.is_empty());
        assert!(events.len() <= 32);
        assert!(events
            .iter()
            .any(|e| e.kind == crate::telemetry::TraceKind::Commit));
        // Disabled tracing records nothing.
        let mut sim = Simulator::new(SimConfig::default(), Machine::load(&p));
        sim.run(10_000_000).unwrap();
        assert!(sim.trace_events().is_empty());
    }

    #[test]
    fn watchdog_is_quiet_on_healthy_runs() {
        let p = counted_loop(2000);
        let mut sim = Simulator::new(SimConfig::default().with_watchdog(10_000), Machine::load(&p));
        assert!(sim.run(10_000_000).is_ok());
        assert!(sim.anomaly().is_none());
    }

    #[test]
    fn watchdog_fires_and_dumps_on_pathological_commit_gaps() {
        // A redirect costs ~frontend_depth cycles of commit gap, so a
        // 2-cycle threshold treats ordinary mispredictions as anomalies —
        // a cheap way to exercise the whole dump path.
        let p = asm(
            "       lda r1, 12345(r31)
                    lda r20, 2000(r31)
             loop:  mulq r1, #163, r1
                    addq r1, #57, r1
                    srl r1, #13, r2
                    and r2, #1, r2
                    bne r2, skip
                    addq r4, #1, r4
             skip:  subq r20, #1, r20
                    bne r20, loop
                    halt",
        );
        let config = SimConfig::default().with_watchdog(2).with_trace_last(16);
        let mut sim = Simulator::new(config, Machine::load(&p));
        let err = sim.run(10_000_000).unwrap_err();
        assert!(matches!(err, SimError::Anomaly(_)), "got {err:?}");
        let report = sim.anomaly().expect("report retained");
        assert!(report.reason.contains("watchdog"));
        assert!(!report.events.is_empty(), "dump includes the event ring");
        assert!(report.registry.get("sim.cycles").is_some());
    }

    #[test]
    fn shadow_oracle_lockstep_is_clean_across_machine_paths() {
        // Shadow the fast-path functional machine with the byte-accurate
        // slow-path one: any divergence between the two implementations
        // would abort the run.
        let p = counted_loop(500);
        let slow = crate::machine::MachineConfig {
            fast_path: false,
            ..Default::default()
        };
        let mut sim = Simulator::new(SimConfig::default(), Machine::load(&p));
        sim.attach_shadow(Machine::with_config(&p, slow));
        let shadowed = sim.run(10_000_000).unwrap().stats;
        assert_eq!(shadowed, run(SimConfig::default(), &p));
        assert!(sim.anomaly().is_none());
    }

    #[test]
    fn shadow_divergence_is_detected_and_reported() {
        // A shadow with different architectural state diverges at the
        // first step whose report depends on it (here: the store address
        // in r2).
        let p = store_loop();
        let mut m = Machine::load(&p);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        let mut sim = Simulator::new(SimConfig::default(), m);
        let mut shadow = Machine::load(&p);
        shadow.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT) + 64);
        sim.attach_shadow(shadow);
        let err = sim.run(10_000_000).unwrap_err();
        assert!(matches!(err, SimError::Anomaly(_)), "got {err:?}");
        let report = sim.anomaly().expect("report retained");
        assert!(report.reason.contains("divergence"));
    }

    #[test]
    fn perfect_vs_finite_rt() {
        // Many distinct aware sequences blow a tiny RT.
        let mut set = dise_core::ProductionSet::new();
        let mut listing = String::from("lda r20, 50(r31)\n");
        for tag in 0..64u16 {
            let spec = dsl::parse_sequence("addq T.P1, #1, T.P2\naddq T.P2, #1, T.P3").unwrap();
            set.add_aware(dise_isa::Op::Cw0, tag, spec).unwrap();
        }
        listing.push_str("loop:\n");
        // The loop touches all 64 codewords.
        let mut insts: Vec<dise_isa::Inst> = Vec::new();
        let base = Program::segment_base(Program::TEXT_SEGMENT);
        let mut b = dise_isa::ProgramBuilder::new(base);
        b.push(dise_isa::Inst::li(50, Reg::r(20)));
        b.label("loop");
        for tag in 0..64u16 {
            b.push(dise_isa::Inst::codeword(dise_isa::Op::Cw0, 1, 2, 3, tag));
        }
        b.push(dise_isa::Inst::alu_ri(dise_isa::Op::Subq, Reg::r(20), 1, Reg::r(20)));
        b.branch_to(dise_isa::Op::Bne, Reg::r(20), "loop");
        b.push(dise_isa::Inst::halt());
        let p = b.finish().unwrap();
        insts.clear();

        let run_with = |org: dise_core::RtOrganization, set: dise_core::ProductionSet| {
            let mut m = Machine::load(&p);
            let config = EngineConfig {
                rt_entries: 16,
                rt_org: org,
                ..EngineConfig::default()
            };
            m.attach_engine(DiseEngine::with_productions(config, set).unwrap());
            let mut sim = Simulator::new(SimConfig::default(), m);
            sim.run(10_000_000).unwrap().stats
        };
        let tiny = run_with(dise_core::RtOrganization::DirectMapped, set.clone());
        let perfect = run_with(dise_core::RtOrganization::Perfect, set);
        assert!(
            tiny.dise_stall_cycles > perfect.dise_stall_cycles * 10,
            "tiny RT must thrash: {} vs {}",
            tiny.dise_stall_cycles,
            perfect.dise_stall_cycles
        );
        assert!(tiny.cycles > perfect.cycles * 2);
    }
}
