//! Basic-block translation cache for the functional machine.
//!
//! [`Machine::run`](crate::Machine::run) interprets one decoded instruction
//! at a time through `step_inner`: predecode lookup, engine inspection,
//! expansion-state bookkeeping, execute, advance. With the predecode table
//! and the shared frontend in place, that dispatch overhead — not the
//! instruction semantics — dominates functional simulation time. This
//! module removes it the standard way: translate each basic block once
//! into a flat µop buffer and execute the buffer directly, falling back to
//! the per-instruction path at block exits, faults, and anything the
//! translator cannot bake.
//!
//! # Block layout
//!
//! A [`Block`] is a run of *groups*, one per fetched item (application
//! instruction, DISE trigger, or short codeword), sharing one flat `ops`
//! buffer:
//!
//! * a `Single` group is one unexpanded instruction;
//! * an `Expand` group is a DISE trigger whose whole replacement sequence
//!   was instantiated at translation time ([`DiseEngine::instantiate_block`]
//!   is a pure function of `(id, disepc, trigger, pc)`, so the baked µops
//!   are exactly what `fetch_replacement` would produce);
//! * a `Dedicated` group is a short codeword's dictionary sequence.
//!
//! Translation stops at the first item it cannot bake (cold pattern
//! counters, faults, codewords with no engine, undecodable bytes) and
//! after any group ending in an unconditional control transfer or `halt`.
//! Conditional application branches do *not* end a block: if taken at run
//! time the executor simply exits early, if untaken execution falls
//! through to the next group. A block that can bake nothing at all is
//! cached as an empty *fallback marker* so re-entry does not retranslate.
//!
//! # Generation invalidation
//!
//! Baked inspection outcomes are valid exactly while the engine would
//! reproduce them, and the engine already has a hardware gate for that:
//! `active == resident` pattern counters (DESIGN.md §10). Every event that
//! can change a steady-state outcome — PT fills, runtime production
//! installs, context switches — bumps [`DiseEngine::generation`]; a block
//! records the generation it was translated under and is discarded on
//! mismatch. RT fills deliberately do *not* bump the generation: they
//! change miss timing, not outcomes, and the executor replays every RT
//! reference per-µop ([`DiseEngine::block_replacement_hit`]), taking the
//! live path on eviction. The program text is immutable after load
//! (`Predecode` relies on the same invariant), so there is no
//! self-modifying-code hazard; *replaced* sequences (runtime installs)
//! are covered by the generation bump.

use crate::machine::DedicatedDict;
use dise_core::{BlockOutcome, DiseEngine, ReplacementId};
use dise_isa::{Inst, Op, OpClass, Predecode, TextItem};

/// Hard cap on fetched items per block — bounds translation latency and
/// keeps the suspend/resume state machine simple.
pub(crate) const MAX_GROUPS: usize = 64;
/// Hard cap on µops per block.
pub(crate) const MAX_UOPS: usize = 256;

/// Telemetry counters for the block cache (kept out of the figure stats
/// registry: translation behavior is a simulator-speed artifact, and the
/// committed figure outputs must stay byte-stable).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Block entries served from a fresh cached translation.
    pub hits: u64,
    /// Block entries that translated (first visit, or after invalidation).
    pub misses: u64,
    /// Cached translations discarded because the engine generation moved.
    pub invalidations: u64,
    /// Entries into fallback-marker blocks (nothing bakeable at that PC).
    pub fallbacks: u64,
    /// Expand-group entries whose RT touch plan was valid (stamped
    /// replay, no set search).
    pub planned_groups: u64,
    /// Expand-group entries that searched the RT sets (and tried to
    /// record a fresh plan).
    pub searched_groups: u64,
    /// Groups retired through the straight-segment batch path (each
    /// segment entry counts all the groups it spans).
    pub seg_groups: u64,
}

impl BlockStats {
    /// The counters as `(name, value)` pairs, in stable order — the same
    /// convention the telemetry registry uses for other counter groups.
    pub fn named_counters(&self) -> [(&'static str, u64); 7] {
        [
            ("block_hits", self.hits),
            ("block_misses", self.misses),
            ("block_invalidations", self.invalidations),
            ("block_fallbacks", self.fallbacks),
            ("block_planned_groups", self.planned_groups),
            ("block_searched_groups", self.searched_groups),
            ("block_seg_groups", self.seg_groups),
        ]
    }
}

/// What one group replays besides its µops.
#[derive(Debug, Clone, Copy)]
pub(crate) enum GroupKind {
    /// One unexpanded instruction. `run` counts the consecutive
    /// *straight* singles starting here (this one included): plain
    /// dataflow instructions whose `exec` provably returns `Ctrl::Next`
    /// — no branch, halt, or fault, and no PC observation — so the
    /// executor may retire the whole run in one batched loop with a
    /// single PC/fuel/counter update. 0 when this single is not itself
    /// straight (branches, halts). Consecutive singles push one µop
    /// each, so a run's µops are contiguous in [`Block::ops`].
    Single { run: u16 },
    /// A DISE expansion: the trigger and its pre-instantiated sequence.
    /// `raw` is the trigger's encoded word (blocks are only built over
    /// predecoded text, so it is always known) — it keys the engine's
    /// instantiation memo on the RT-eviction fallback path. `solo` bakes
    /// [`DiseEngine::single_block_sequences`]: when set, an entry hit
    /// lets the executor skip the per-µop RT replay entirely (engine
    /// geometry is fixed for an attached engine, so this never goes
    /// stale).
    Expand {
        id: ReplacementId,
        len: u8,
        trigger: Inst,
        raw: u32,
        solo: bool,
        /// No µop before the last can branch, jump, halt, or redirect
        /// DISEPC (and none is a DISE branch), so the executor may run
        /// the whole baked sequence as one batched loop after verifying
        /// every touch plan up front — the expansion fast path. Baked
        /// under `DISE_ACF_ARENA=on` only; `false` keeps the per-µop
        /// reference path.
        straight: bool,
    },
    /// A dedicated-decompressor expansion (dictionary index and length).
    /// `straight` as for `Expand` (no RT interplay here — it just gates
    /// the batched loop).
    Dedicated { ix: u16, len: u8, straight: bool },
}

/// One fetched item inside a block.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Group {
    /// Application PC of the fetched item.
    pub pc: u64,
    /// Fetched item size in bytes (4, or 2 for short codewords).
    pub fetch_size: u64,
    /// Index of the group's first µop in [`Block::ops`].
    pub first: u32,
    /// `1 + index` into [`Block::segs`] when this group heads a straight
    /// segment; 0 otherwise.
    pub seg: u16,
    pub kind: GroupKind,
}

/// A *straight segment*: a maximal run of two or more consecutive
/// wholly-straight groups — every µop, the last of every group included,
/// is plain dataflow (`exec` provably returns `Ctrl::Next`, cannot
/// fault, and never observes the PC). The executor retires the whole
/// segment as one loop over its contiguous µop span with a single
/// PC/fuel/counter/engine-statistics update, all precomputed here; the
/// per-group paths remain for partial fuel, unverified plans, and
/// non-static RTs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Seg {
    /// Groups spanned (always ≥ 2).
    pub groups: u32,
    /// Total µops spanned (contiguous in [`Block::ops`] from the head
    /// group's `first`).
    pub uops: u32,
    /// `Single` groups among them (each one pass-through inspection).
    pub singles: u32,
    /// `Expand` groups among them (each one engine inspection +
    /// expansion).
    pub expands: u32,
    /// Total replacement instructions of the `Expand` groups.
    pub repl: u64,
    /// Total fetch bytes (the segment's PC advance).
    pub advance: u64,
}

/// A translated basic block. `groups.is_empty()` marks a PC where nothing
/// could be baked (the executor falls straight back to `step_inner`).
#[derive(Debug, Clone)]
pub(crate) struct Block {
    /// Engine generation this block was translated under (0 without an
    /// engine — nothing can invalidate outcomes then).
    pub generation: u64,
    /// Flat µop buffer, all groups concatenated.
    pub ops: Vec<Inst>,
    /// Per-µop RT slot touch plan, parallel to `ops`: 0 for "unknown —
    /// search the RT", else `slot + 1` where `slot` is the physical RT
    /// slot µop `i`'s reference touched on a previous pass. Entries are
    /// recorded lazily, one per executed µop, so partially resident or
    /// jumpily executed sequences still plan the µops they actually run.
    /// Entries are hints, not invariants: every use re-verifies the slot
    /// against its packed RT key (`DiseEngine::block_replacement_stamp`),
    /// so a stale hint just falls back to the searching path and
    /// re-records. (`RT_NO_SLOT` wraps to 0 by design: a perfect RT has
    /// no slots to stamp, so it never plans.)
    pub plan: Vec<u32>,
    pub groups: Vec<Group>,
    /// Straight segments (see [`Seg`]), referenced by `Group::seg`.
    pub segs: Vec<Seg>,
}

impl Block {
    /// True when every recorded RT touch plan the segment headed by
    /// group `gi` (spanning `n` groups) would replay is present: the
    /// entry plan for solo expand groups, every per-µop plan otherwise.
    /// On a statically conflict-free RT a present plan provably still
    /// holds its entry (see the executor's group-level fast path), so
    /// this is the segment's entire verification. Singles and dedicated
    /// groups have no RT interplay and pass vacuously.
    #[inline]
    pub(crate) fn seg_plans_ok(&self, gi: usize, n: usize) -> bool {
        self.groups[gi..gi + n].iter().all(|g| match g.kind {
            GroupKind::Single { .. } | GroupKind::Dedicated { .. } => true,
            GroupKind::Expand { len, solo, .. } => {
                let base = g.first as usize;
                if solo {
                    self.plan[base] != 0
                } else {
                    self.plan[base..base + len as usize].iter().all(|&p| p != 0)
                }
            }
        })
    }
}

const NO_BLOCK: u32 = u32::MAX;

/// The per-machine block cache: a direct index over every even text
/// offset (block entries are fetch addresses, which are even by
/// construction) into a dense block arena.
#[derive(Debug)]
pub(crate) struct BlockCache {
    text_base: u64,
    text_len: usize,
    /// `(pc - text_base) / 2` → index into `blocks`, or `NO_BLOCK`.
    index: Vec<u32>,
    blocks: Vec<Block>,
    pub stats: BlockStats,
}

impl BlockCache {
    pub fn new(predecode: &Predecode) -> BlockCache {
        BlockCache {
            text_base: predecode.text_base(),
            text_len: predecode.text_len(),
            index: vec![NO_BLOCK; predecode.text_len().div_ceil(2)],
            blocks: Vec::new(),
            stats: BlockStats::default(),
        }
    }

    /// The index slot for `pc`, if it is an even text address.
    #[inline]
    pub fn slot(&self, pc: u64) -> Option<usize> {
        let off = pc.checked_sub(self.text_base)? as usize;
        if off & 1 != 0 || off >= self.text_len {
            return None;
        }
        Some(off / 2)
    }

    /// The cached block at `slot`, if any.
    #[inline]
    pub fn get(&self, slot: usize) -> Option<&Block> {
        match self.index[slot] {
            NO_BLOCK => None,
            i => Some(&self.blocks[i as usize]),
        }
    }

    /// Mutable access to the cached block at `slot` (the executor updates
    /// touch plans in place), split-borrowed alongside the stats so the
    /// executor can count while holding the block.
    #[inline]
    pub fn get_mut(&mut self, slot: usize) -> Option<(&mut Block, &mut BlockStats)> {
        let BlockCache { index, blocks, stats, .. } = self;
        match index[slot] {
            NO_BLOCK => None,
            i => Some((&mut blocks[i as usize], stats)),
        }
    }

    /// Installs (or replaces) the block at `slot`.
    pub fn install(&mut self, slot: usize, block: Block) {
        match self.index[slot] {
            NO_BLOCK => {
                self.index[slot] = self.blocks.len() as u32;
                self.blocks.push(block);
            }
            i => self.blocks[i as usize] = block,
        }
    }
}

/// True for instructions that always leave the block (the translator ends
/// the block after a group whose last µop is one of these).
fn always_exits(op: Op) -> bool {
    matches!(op, Op::Halt | Op::Br | Op::Bsr | Op::Jmp | Op::Jsr | Op::Ret)
}

/// A µop is bakeable if executing it can never need the per-instruction
/// path's error handling or escape the group's (PC, DISEPC) discipline in
/// a way the executor does not model: codewords fault in `exec`, and a
/// DISE branch must land inside its own sequence (the slow path would
/// charge the out-of-range fetch error instead — leave that to it).
fn bakeable_uop(inst: &Inst, seq_len: u8) -> bool {
    if inst.op.is_codeword() {
        return false;
    }
    if inst.dise_branch {
        // `exec` computes the target as `imm as u8` (wrapping).
        return (inst.imm as u8) < seq_len;
    }
    true
}

/// True when a lone application instruction is plain dataflow: `exec`
/// can only return `Ctrl::Next` for it — it cannot branch, jump, halt,
/// or fault, and its semantics never observe the PC (only control
/// transfers read `next_pc`, only codewords read the fault PC). Runs of
/// such singles batch into one executor loop.
fn straight_single(inst: &Inst) -> bool {
    !inst.dise_branch
        && !inst.op.is_codeword()
        && !matches!(
            inst.op.class(),
            OpClass::CondBranch | OpClass::UncondBranch | OpClass::IndirectJump
        )
        && inst.op != Op::Halt
}

/// True when a baked µop run is *straight*: every µop before the last is
/// plain dataflow (`exec` can only return `Ctrl::Next` or fault — no
/// branch, jump, or halt) and no µop is a DISE branch. Such a group's
/// dynamic path is the static one, so the executor may verify all RT
/// touch plans up front and run the µops in one batched loop.
fn straight_group(uops: &[Inst]) -> bool {
    let last = uops.len() - 1;
    uops.iter().enumerate().all(|(i, u)| {
        !u.dise_branch
            && (i == last
                || (!matches!(
                    u.op.class(),
                    OpClass::CondBranch | OpClass::UncondBranch | OpClass::IndirectJump
                ) && u.op != Op::Halt))
    })
}

/// Translates the basic block entered at `entry`. Pure with respect to
/// the engine: only `block_outcome` / `instantiate_block` (both `&self`)
/// are consulted, so translation itself perturbs no statistics and no
/// table state — exactly why a translated block can claim bit-identical
/// replay.
pub(crate) fn translate(
    predecode: &Predecode,
    engine: Option<&DiseEngine>,
    dedicated: Option<&DedicatedDict>,
    entry: u64,
    generation: u64,
) -> Block {
    let mut block = Block {
        generation,
        ops: Vec::new(),
        plan: Vec::new(),
        groups: Vec::new(),
        segs: Vec::new(),
    };
    let mut pc = entry;
    // The batched executor paths ride the same toggle as the engine's
    // replacement arena: `DISE_ACF_ARENA=off` pins every group to the
    // per-µop reference path (the ablation the CI gate compares).
    let arena_fast = dise_core::acf_arena_env();
    while block.groups.len() < MAX_GROUPS && block.ops.len() < MAX_UOPS {
        let Some(pi) = predecode.get(pc) else { break };
        let first = block.ops.len() as u32;
        let (kind, fetch_size, last_op) = match pi.item {
            TextItem::Short(ix) => {
                let Some(seq) = dedicated.and_then(|d| d.get(ix)) else {
                    break;
                };
                if seq.is_empty() {
                    break;
                }
                let len = seq.len() as u8;
                if !seq.iter().all(|u| bakeable_uop(u, len)) {
                    break;
                }
                block.ops.extend_from_slice(seq);
                (
                    GroupKind::Dedicated {
                        ix,
                        len,
                        straight: arena_fast && straight_group(seq),
                    },
                    2,
                    seq[seq.len() - 1].op,
                )
            }
            TextItem::Inst(inst) => {
                let outcome = match engine {
                    Some(e) => e.block_outcome(&inst),
                    None => BlockOutcome::Pass,
                };
                match outcome {
                    BlockOutcome::NotReady | BlockOutcome::Fault => break,
                    BlockOutcome::Pass => {
                        // Codewords fault without an expansion; a DISE
                        // branch outside a sequence is a state the slow
                        // path should own.
                        if inst.op.is_codeword() || inst.dise_branch {
                            break;
                        }
                        block.ops.push(inst);
                        (GroupKind::Single { run: 0 }, 4, inst.op)
                    }
                    BlockOutcome::Expand { id, len } => {
                        let Some(engine) = engine else { unreachable!() };
                        // Arena-baked sequences land in one slice copy
                        // (plus in-place fixups); everything else walks
                        // the per-µop directive path.
                        let baked =
                            match engine.instantiate_block_span(id, &inst, pc, &mut block.ops) {
                                Some(l) => {
                                    debug_assert_eq!(l, len);
                                    true
                                }
                                None => (0..len).all(|d| {
                                    match engine.instantiate_block(id, d, &inst, pc) {
                                        Ok(u) => {
                                            block.ops.push(u);
                                            true
                                        }
                                        Err(_) => false,
                                    }
                                }),
                            };
                        if !baked
                            || !block.ops[first as usize..]
                                .iter()
                                .all(|u| bakeable_uop(u, len))
                        {
                            block.ops.truncate(first as usize);
                            break;
                        }
                        let uops = &block.ops[first as usize..];
                        let last = uops[uops.len() - 1].op;
                        (
                            GroupKind::Expand {
                                id,
                                len,
                                trigger: inst,
                                raw: pi.raw,
                                solo: engine.single_block_sequences(len),
                                straight: arena_fast && straight_group(uops),
                            },
                            4,
                            last,
                        )
                    }
                }
            }
        };
        block.groups.push(Group {
            pc,
            fetch_size,
            first,
            seg: 0,
            kind,
        });
        if always_exits(last_op) {
            break;
        }
        pc += fetch_size;
    }
    // Backward pass marking runs of straight singles (see
    // [`GroupKind::Single`]): `run` at each straight single is one more
    // than its successor's. The batched executor also relies on the
    // run's µops being contiguous, which holds by construction —
    // consecutive singles push exactly one µop each.
    let mut run_next: u16 = 0;
    let mut first_next: u32 = u32::MAX;
    for g in block.groups.iter_mut().rev() {
        if let GroupKind::Single { run } = &mut g.kind {
            if arena_fast && straight_single(&block.ops[g.first as usize]) {
                debug_assert!(run_next == 0 || first_next == g.first + 1, "contiguous runs");
                run_next = run_next.saturating_add(1);
                *run = run_next;
            } else {
                run_next = 0;
            }
        } else {
            run_next = 0;
        }
        first_next = g.first;
    }
    // Forward pass grouping maximal runs of wholly-straight groups into
    // segments (see [`Seg`]). Singles qualify exactly when the run pass
    // above marked them; expansion groups when `straight` holds *and*
    // the final µop is itself plain dataflow (the `straight` flag only
    // constrains the interior). µop contiguity across a segment holds by
    // construction: every group pushes its µops consecutively.
    let mut i = 0;
    while i < block.groups.len() {
        if !wholly_straight(&block.groups[i], &block.ops) {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < block.groups.len() && wholly_straight(&block.groups[j], &block.ops) {
            j += 1;
        }
        if j - i >= 2 {
            let mut seg = Seg {
                groups: (j - i) as u32,
                uops: 0,
                singles: 0,
                expands: 0,
                repl: 0,
                advance: 0,
            };
            for g in &block.groups[i..j] {
                seg.advance += g.fetch_size;
                match g.kind {
                    GroupKind::Single { .. } => {
                        seg.singles += 1;
                        seg.uops += 1;
                    }
                    GroupKind::Expand { len, .. } => {
                        seg.expands += 1;
                        seg.uops += len as u32;
                        seg.repl += len as u64;
                    }
                    GroupKind::Dedicated { len, .. } => seg.uops += len as u32,
                }
            }
            block.segs.push(seg);
            block.groups[i].seg = block.segs.len() as u16;
        }
        i = j;
    }
    block.plan = vec![0; block.ops.len()];
    block
}

/// True when every µop of `g` — the last included — is plain dataflow,
/// so the group as a whole provably retires with `Ctrl::Next` (the
/// segment-membership test; see [`Seg`]).
fn wholly_straight(g: &Group, ops: &[Inst]) -> bool {
    match g.kind {
        GroupKind::Single { run } => run >= 1,
        GroupKind::Expand { len, straight, .. } | GroupKind::Dedicated { len, straight, .. } => {
            straight && straight_single(&ops[g.first as usize + len as usize - 1])
        }
    }
}
