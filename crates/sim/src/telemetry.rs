//! Simulator telemetry: the unified stats registry, the pipeline event
//! trace, and dump-on-anomaly reports.
//!
//! Three cooperating pieces (see DESIGN.md §9):
//!
//! * [`StatsRegistry`] — a flat, name-sorted map of typed counters
//!   (`sim.cycles`, `l1i.misses`, `bpred.mispredicts`,
//!   `engine.expansions`, …). Every component of the timing model
//!   registers its counters under a fixed prefix, and the registry
//!   exports them as stable-ordered text or JSON: byte-identical for
//!   identical runs, regardless of job count or cache warmth (the figure
//!   harness asserts this). The existing `SimStats`/`CacheStats`/
//!   `BpredStats`/`EngineStats` structs remain the source-compatible
//!   views; the registry is assembled from them, never the other way
//!   around, so the hot path keeps its plain field increments.
//! * [`EventRing`] — a fixed-capacity ring of compact per-instruction
//!   pipeline events ([`TraceEvent`]): fetch, expansion, dispatch, issue,
//!   writeback, commit, redirect, and stall causes with their cycle
//!   counts. Recording costs one branch per retired instruction when
//!   disabled (`trace_last == 0`), verified by the `timing_speed`
//!   harness.
//! * [`AnomalyReport`] — what the simulator dumps when its watchdog
//!   fires (a commit gap longer than `watchdog` cycles with a non-empty
//!   ROB), when a shadow functional oracle diverges from the primary
//!   machine, or when a run exhausts its fuel with tracing enabled: the
//!   trigger reason, ROB/RS occupancy, the registry snapshot, and the
//!   last-K-event ring contents. Reports route through the installed
//!   observability sink when one exists (`dise_obs::install` /
//!   `DISE_OBS_SINK`, as a JSONL `anomaly` record via
//!   [`AnomalyReport::json_payload`]); stderr remains the fallback, so
//!   a bare run still prints its dump.

use std::fmt;

/// One registered statistic: an exact event counter or a derived value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatValue {
    /// An exact event count.
    Count(u64),
    /// A derived floating-point value (rates, ratios).
    Value(f64),
}

impl StatValue {
    /// The value as an `f64`. Counts convert exactly: simulated event
    /// counters stay far below 2^53.
    pub fn as_f64(&self) -> f64 {
        match *self {
            StatValue::Count(v) => v as f64,
            StatValue::Value(v) => v,
        }
    }
}

impl fmt::Display for StatValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Both arms use Rust's shortest-round-trip formatting, so the
            // exported text re-parses to identical bits — the property the
            // harness cache and the byte-stability checks rely on.
            StatValue::Count(v) => write!(f, "{v}"),
            StatValue::Value(v) => write!(f, "{v}"),
        }
    }
}

/// A name-sorted registry of statistics.
///
/// Names are dot-separated, component-prefixed, and unique: `sim.*`
/// (pipeline), `l1i.*`/`l1d.*`/`l2.*` (caches), `bpred.*` (branch
/// predictor), `engine.*` (DISE engine). Insertion keeps the entries
/// sorted, so every export is stable-ordered by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsRegistry {
    entries: Vec<(String, StatValue)>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Registers (or replaces) a statistic.
    pub fn set(&mut self, name: impl Into<String>, value: StatValue) {
        let name = name.into();
        debug_assert!(
            !name.contains(['\n', '"', '\\', ' ']),
            "stat names are single-line, space-free and JSON-safe: {name:?}"
        );
        match self
            .entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name.as_str()))
        {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (name, value)),
        }
    }

    /// Registers an exact event counter.
    pub fn count(&mut self, name: impl Into<String>, value: u64) {
        self.set(name, StatValue::Count(value));
    }

    /// Registers a derived floating-point value.
    pub fn value(&mut self, name: impl Into<String>, value: f64) {
        self.set(name, StatValue::Value(value));
    }

    /// Looks a statistic up by exact name.
    pub fn get(&self, name: &str) -> Option<StatValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// All entries, sorted by name.
    pub fn entries(&self) -> &[(String, StatValue)] {
        &self.entries
    }

    /// Plain-text export: one `name value` line per entry, name-sorted.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// Compact single-line JSON export: the same flat object as
    /// [`StatsRegistry::to_json`] with no whitespace — embeddable in a
    /// JSONL record field. Deterministic byte-for-byte for identical
    /// runs.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }

    /// JSON export: one flat object, keys name-sorted, values numeric.
    /// Deterministic byte-for-byte for identical runs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value.to_string());
        }
        out.push_str("\n}\n");
        out
    }
}

/// A log2-bucketed histogram of non-negative integer samples
/// (durations in ms/µs, queue depths, gaps).
///
/// Bucket `b` holds samples whose floor(log2) is `b - 1`: bucket 0 is
/// exactly the value 0, bucket 1 holds {1}, bucket 2 holds {2, 3},
/// bucket 3 holds {4..8), and so on up to bucket 64 (values ≥ 2^63).
/// Recording is two instructions (leading-zero count + increment), so
/// live services can feed one per event without measurable cost. The
/// JSON export is sparse — `[bucket, count]` pairs for occupied buckets
/// only — plus exact count/sum/min/max, and [`Log2Histogram::export_into`]
/// projects the summary into a [`StatsRegistry`] under a prefix.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Log2Histogram::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Occupied buckets as `(bucket index, count)`, ascending.
    pub fn occupied(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Compact single-line JSON: exact summary plus sparse
    /// `[bucket, count]` pairs. `{"count":0,"sum":0,"buckets":[]}` when
    /// empty (min/max are omitted — they have no value yet).
    pub fn to_json_compact(&self) -> String {
        let mut out = format!("{{\"count\":{},\"sum\":{}", self.count, self.sum);
        if self.count > 0 {
            out.push_str(&format!(",\"min\":{},\"max\":{}", self.min, self.max));
        }
        out.push_str(",\"buckets\":[");
        for (i, (b, c)) in self.occupied().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{b},{c}]"));
        }
        out.push_str("]}");
        out
    }

    /// Projects the summary into `registry` as `<prefix>.count`,
    /// `<prefix>.sum`, `<prefix>.min`, `<prefix>.max` plus one
    /// `<prefix>.b<NN>` counter per occupied bucket.
    pub fn export_into(&self, registry: &mut StatsRegistry, prefix: &str) {
        registry.count(format!("{prefix}.count"), self.count);
        registry.count(format!("{prefix}.sum"), self.sum);
        if self.count > 0 {
            registry.count(format!("{prefix}.min"), self.min);
            registry.count(format!("{prefix}.max"), self.max);
        }
        for (b, c) in self.occupied() {
            registry.count(format!("{prefix}.b{b:02}"), c);
        }
    }
}

/// Why fetch stalled at a traced instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// DISE PT/RT miss: pipeline flush plus fill penalty.
    DiseMiss,
    /// Reorder buffer full: fetch throttled until the oldest entry
    /// commits.
    RobFull,
    /// Reservation stations full: fetch throttled until one issues.
    RsFull,
    /// I-cache miss: fetch waits for the fill.
    IcacheMiss,
    /// Stall-per-expansion engine placement: one bubble per expansion.
    ExpandBubble,
}

/// What happened at a traced pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// An application fetch of `size` bytes began.
    Fetch {
        /// Fetched bytes (4, or 2 for a short codeword).
        size: u8,
    },
    /// A DISE expansion of `len` replacement instructions began.
    Expand {
        /// Replacement-sequence length.
        len: u8,
    },
    /// The instruction entered the out-of-order core.
    Dispatch,
    /// The instruction issued to a functional unit.
    Issue,
    /// The instruction completed execution (wrote back).
    Writeback,
    /// The instruction committed.
    Commit,
    /// The instruction redirected fetch (misprediction or unpredicted
    /// taken branch).
    Redirect,
    /// Fetch stalled at this instruction.
    Stall {
        /// Why.
        cause: StallCause,
        /// Stall length in cycles.
        cycles: u64,
    },
}

/// One compact pipeline event: which dynamic instruction, where it was,
/// what happened, and in which cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event lands in.
    pub cycle: u64,
    /// Dynamic instruction sequence number (0-based).
    pub seq: u64,
    /// Application PC (the trigger's PC inside replacement sequences).
    pub pc: u64,
    /// Offset within the replacement sequence (0 outside one).
    pub disepc: u8,
    /// The event.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "c{:<10} seq {:<9} pc {:#010x}+{:<3} ",
            self.cycle, self.seq, self.pc, self.disepc
        )?;
        match self.kind {
            TraceKind::Fetch { size } => write!(f, "fetch     size={size}"),
            TraceKind::Expand { len } => write!(f, "expand    len={len}"),
            TraceKind::Dispatch => f.write_str("dispatch"),
            TraceKind::Issue => f.write_str("issue"),
            TraceKind::Writeback => f.write_str("writeback"),
            TraceKind::Commit => f.write_str("commit"),
            TraceKind::Redirect => f.write_str("redirect"),
            TraceKind::Stall { cause, cycles } => {
                write!(f, "stall     cause={cause:?} cycles={cycles}")
            }
        }
    }
}

/// A fixed-capacity ring of [`TraceEvent`]s: pushes never allocate after
/// construction, and once full each push overwrites the oldest event, so
/// the ring always holds the last-K events of the run.
#[derive(Debug, Clone)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next slot to overwrite once the buffer is full.
    next: usize,
    total: u64,
}

impl EventRing {
    /// A ring holding the last `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> EventRing {
        let cap = cap.max(1);
        EventRing {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Appends an event, overwriting the oldest once full.
    #[inline]
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(event);
        } else {
            self.buf[self.next] = event;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Total events ever pushed (≥ `len`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Everything the simulator knows at the moment an anomaly fires,
/// formatted by `Display` as the dump the harness prints to stderr.
#[derive(Debug, Clone)]
pub struct AnomalyReport {
    /// What triggered the dump.
    pub reason: String,
    /// Dynamic instruction sequence number at the trigger.
    pub seq: u64,
    /// In-flight ROB entries at the trigger.
    pub rob_occupancy: usize,
    /// In-flight RS entries at the trigger.
    pub rs_occupancy: usize,
    /// Registry snapshot at the trigger.
    pub registry: StatsRegistry,
    /// The last-K pipeline events (empty when tracing was disabled).
    pub events: Vec<TraceEvent>,
    /// Application PC at the trigger (for oracle divergences, the
    /// divergent instruction's PC).
    pub pc: u64,
    /// The primary machine's full register file at the trigger.
    pub regs: Vec<u64>,
    /// The shadow oracle's register file at the trigger, when one was
    /// attached — diff against `regs` to locate the divergent state.
    pub shadow_regs: Option<Vec<u64>>,
    /// True when this report came from an anomaly-triggered time-travel
    /// replay (re-running the last checkpoint window with the event ring
    /// and shadow oracle armed) rather than the original detection.
    pub replay: bool,
}

impl AnomalyReport {
    /// The report as one single-line JSON object — the payload an
    /// observability sink ships (wrapped in an `anomaly` record by
    /// `dise_obs::Session::anomaly`): the trigger reason, sequence
    /// number, ROB/RS occupancy, the full registry snapshot as a flat
    /// object, and the last-K events in their `Display` form.
    pub fn json_payload(&self) -> String {
        let events: Vec<String> = self.events.iter().map(TraceEvent::to_string).collect();
        let mut rec = dise_obs::Record::new()
            .str("reason", &self.reason)
            .u64("at_seq", self.seq)
            .u64("pc", self.pc)
            .bool("replay", self.replay)
            .u64("rob_occupancy", self.rob_occupancy as u64)
            .u64("rs_occupancy", self.rs_occupancy as u64)
            .raw("stats", &self.registry.to_json_compact())
            .str_array("events", events.iter().map(String::as_str))
            .u64_array("regs", self.regs.iter().copied());
        if let Some(shadow) = &self.shadow_regs {
            rec = rec.u64_array("shadow_regs", shadow.iter().copied());
        }
        rec.finish()
    }
}

impl fmt::Display for AnomalyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.replay { " (time-travel replay)" } else { "" };
        writeln!(f, "== simulator anomaly{tag}: {} ==", self.reason)?;
        writeln!(
            f,
            "at seq {} | pc {:#x} | ROB occupancy {} | RS occupancy {}",
            self.seq, self.pc, self.rob_occupancy, self.rs_occupancy
        )?;
        writeln!(f, "-- stats registry --")?;
        f.write_str(&self.registry.to_text())?;
        if !self.regs.is_empty() {
            writeln!(f, "-- register file (primary{}) --", if self.shadow_regs.is_some() { " vs shadow, divergent only" } else { "" })?;
            match &self.shadow_regs {
                Some(shadow) => {
                    for (i, (&p, &s)) in self.regs.iter().zip(shadow).enumerate() {
                        if p != s {
                            writeln!(f, "r{i:<2} primary {p:#018x}  shadow {s:#018x}")?;
                        }
                    }
                }
                None => {
                    for (i, &p) in self.regs.iter().enumerate() {
                        if p != 0 {
                            writeln!(f, "r{i:<2} {p:#018x}")?;
                        }
                    }
                }
            }
        }
        if self.events.is_empty() {
            writeln!(f, "-- no event trace (run with tracing enabled) --")?;
        } else {
            writeln!(f, "-- last {} pipeline events --", self.events.len())?;
            for e in &self.events {
                writeln!(f, "{e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_exports_are_name_sorted_and_stable() {
        let mut r = StatsRegistry::new();
        r.count("sim.cycles", 100);
        r.count("bpred.mispredicts", 7);
        r.value("l1i.miss_rate", 0.25);
        r.count("sim.cycles", 101); // replace, not duplicate
        assert_eq!(
            r.entries().iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>(),
            vec!["bpred.mispredicts", "l1i.miss_rate", "sim.cycles"]
        );
        assert_eq!(r.get("sim.cycles"), Some(StatValue::Count(101)));
        assert_eq!(r.get("nope"), None);
        assert_eq!(
            r.to_text(),
            "bpred.mispredicts 7\nl1i.miss_rate 0.25\nsim.cycles 101\n"
        );
        assert_eq!(
            r.to_json(),
            "{\n  \"bpred.mispredicts\": 7,\n  \"l1i.miss_rate\": 0.25,\n  \"sim.cycles\": 101\n}\n"
        );
    }

    #[test]
    fn empty_registry_json_is_valid() {
        assert_eq!(StatsRegistry::new().to_json(), "{\n}\n");
    }

    #[test]
    fn ring_keeps_the_last_k_events() {
        let ev = |seq| TraceEvent {
            cycle: seq,
            seq,
            pc: 0x1000,
            disepc: 0,
            kind: TraceKind::Commit,
        };
        let mut ring = EventRing::new(4);
        assert!(ring.is_empty());
        for s in 0..10 {
            ring.push(ev(s));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total(), 10);
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest-first, last K only");
    }

    #[test]
    fn ring_capacity_clamps_to_one() {
        let mut ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        for s in 0..3 {
            ring.push(TraceEvent {
                cycle: s,
                seq: s,
                pc: 0,
                disepc: 0,
                kind: TraceKind::Dispatch,
            });
        }
        assert_eq!(ring.events().len(), 1);
        assert_eq!(ring.events()[0].seq, 2);
    }

    #[test]
    fn anomaly_report_formats_every_section() {
        let mut registry = StatsRegistry::new();
        registry.count("sim.cycles", 42);
        let report = AnomalyReport {
            reason: "test trigger".into(),
            seq: 9,
            rob_occupancy: 3,
            rs_occupancy: 1,
            registry,
            events: vec![TraceEvent {
                cycle: 40,
                seq: 9,
                pc: 0x0400_0000,
                disepc: 0,
                kind: TraceKind::Stall {
                    cause: StallCause::RobFull,
                    cycles: 12,
                },
            }],
            pc: 0x0400_0010,
            regs: vec![0, 7, 8],
            shadow_regs: Some(vec![0, 7, 9]),
            replay: true,
        };
        let text = report.to_string();
        assert!(text.contains("test trigger"));
        assert!(text.contains("time-travel replay"));
        assert!(text.contains("sim.cycles 42"));
        assert!(text.contains("RobFull"));
        assert!(text.contains("ROB occupancy 3"));
        assert!(text.contains("pc 0x4000010"));
        // Only the divergent register prints in the side-by-side dump.
        assert!(text.contains("r2 "), "{text}");
        assert!(!text.contains("r1 "), "{text}");
        let payload = report.json_payload();
        assert!(payload.contains("\"pc\":67108880"), "{payload}");
        assert!(payload.contains("\"replay\":true"));
        assert!(payload.contains("\"regs\":[0,7,8]"));
        assert!(payload.contains("\"shadow_regs\":[0,7,9]"));
    }

    #[test]
    fn log2_histogram_buckets_and_summary() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.to_json_compact(), "{\"count\":0,\"sum\":0,\"buckets\":[]}");
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        // 0 → b0, 1 → b1, {2,3} → b2, {4,7} → b3, 8 → b4, 1000 → b10.
        assert_eq!(
            h.occupied(),
            vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (10, 1)]
        );
        assert_eq!(
            h.to_json_compact(),
            "{\"count\":8,\"sum\":1025,\"min\":0,\"max\":1000,\
             \"buckets\":[[0,1],[1,1],[2,2],[3,2],[4,1],[10,1]]}"
        );
        let mut other = Log2Histogram::new();
        other.record(1000);
        other.merge(&h);
        assert_eq!(other.count(), 9);
        assert_eq!(other.occupied().last(), Some(&(10usize, 2u64)));
        let mut reg = StatsRegistry::new();
        h.export_into(&mut reg, "serve.queue_wait_ms");
        assert_eq!(reg.get("serve.queue_wait_ms.count"), Some(StatValue::Count(8)));
        assert_eq!(reg.get("serve.queue_wait_ms.b10"), Some(StatValue::Count(1)));
        assert_eq!(reg.get("serve.queue_wait_ms.max"), Some(StatValue::Count(1000)));
    }
}
