//! Branch prediction: gshare direction predictor, branch target buffer,
//! and return-address stack ("aggressive branch speculation", paper §4).
//!
//! Because the timing model is driven by the correct-path oracle, the
//! predictor's job is to decide — per control transfer — whether the front
//! end would have followed it correctly; a wrong decision costs a pipeline
//! redirect. Per §2.2, DISE-internal branches and non-trigger replacement
//! branches are never predicted: taken ones always redirect.

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// log2 of the gshare pattern-history-table size.
    pub gshare_bits: u32,
    /// Branch-target-buffer entries (direct-mapped).
    pub btb_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl Default for BpredConfig {
    fn default() -> BpredConfig {
        BpredConfig {
            gshare_bits: 14,
            btb_entries: 2048,
            ras_depth: 16,
        }
    }
}

/// Prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Conditional-branch predictions made.
    pub cond_predictions: u64,
    /// Conditional-branch direction mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-jump target mispredictions (BTB/RAS misses).
    pub target_mispredicts: u64,
}

impl BpredStats {
    /// Registers the predictor counters under `prefix` (normally
    /// `bpred`) in the unified stats registry. `bpred.mispredicts` is
    /// the combined direction + target total.
    pub fn register(&self, prefix: &str, registry: &mut crate::telemetry::StatsRegistry) {
        registry.count(format!("{prefix}.cond_predictions"), self.cond_predictions);
        registry.count(format!("{prefix}.cond_mispredicts"), self.cond_mispredicts);
        registry.count(format!("{prefix}.target_mispredicts"), self.target_mispredicts);
        registry.count(
            format!("{prefix}.mispredicts"),
            self.cond_mispredicts + self.target_mispredicts,
        );
    }
}

/// The predictor.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BpredConfig,
    /// 2-bit saturating counters.
    pht: Vec<u8>,
    history: u64,
    /// Direct-mapped BTB: `btb[i] = (tag, target)`.
    btb: Vec<(u64, u64)>,
    ras: Vec<u64>,
    stats: BpredStats,
}

impl BranchPredictor {
    /// Creates a predictor.
    pub fn new(config: BpredConfig) -> BranchPredictor {
        BranchPredictor {
            config,
            pht: vec![1; 1 << config.gshare_bits],
            history: 0,
            btb: vec![(u64::MAX, 0); config.btb_entries.max(1)],
            ras: Vec::with_capacity(config.ras_depth),
            stats: BpredStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BpredStats {
        self.stats
    }

    /// Predicts and trains on a conditional branch at `pc` with actual
    /// outcome `taken` and target `target`. Returns true if the front end
    /// followed the correct path (direction correct, and target known when
    /// taken).
    pub fn cond_branch(&mut self, pc: u64, taken: bool, target: u64) -> bool {
        self.stats.cond_predictions += 1;
        // PCs are 2-byte granular (compressed programs intermix 2-byte
        // codewords with 4-byte instructions), so only the constant-zero
        // bit 0 may be dropped: `pc >> 2` would discard bit 1 and alias
        // adjacent compressed branches onto one PHT entry.
        let ix =
            ((pc >> 1) ^ self.history) as usize & ((1 << self.config.gshare_bits) - 1);
        let counter = &mut self.pht[ix];
        let predicted_taken = *counter >= 2;
        // Train.
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history =
            ((self.history << 1) | taken as u64) & ((1 << self.config.gshare_bits) - 1);
        let mut correct = predicted_taken == taken;
        if taken {
            // Even a correct taken prediction needs the target from the
            // BTB at fetch time.
            if !self.btb_lookup_update(pc, target) && predicted_taken {
                correct = false;
            }
        }
        if !correct {
            self.stats.cond_mispredicts += 1;
        }
        correct
    }

    /// Unconditional PC-relative branch (`br`/`bsr`): direction is known,
    /// the target comes from the BTB. `push_ras` pushes the return address
    /// for calls.
    pub fn uncond_branch(&mut self, pc: u64, target: u64, push_ras: Option<u64>) -> bool {
        let hit = self.btb_lookup_update(pc, target);
        if let Some(ra) = push_ras {
            if self.ras.len() == self.config.ras_depth {
                self.ras.remove(0);
            }
            self.ras.push(ra);
        }
        if !hit {
            self.stats.target_mispredicts += 1;
        }
        hit
    }

    /// Indirect jump (`jmp`/`jsr`): target predicted by the BTB. `push_ras`
    /// pushes the return address for calls.
    pub fn indirect(&mut self, pc: u64, target: u64, push_ras: Option<u64>) -> bool {
        let hit = self.btb_lookup_update(pc, target);
        if let Some(ra) = push_ras {
            if self.ras.len() == self.config.ras_depth {
                self.ras.remove(0);
            }
            self.ras.push(ra);
        }
        if !hit {
            self.stats.target_mispredicts += 1;
        }
        hit
    }

    /// Function return: target predicted by the return-address stack.
    pub fn ret(&mut self, target: u64) -> bool {
        let predicted = self.ras.pop();
        let hit = predicted == Some(target);
        if !hit {
            self.stats.target_mispredicts += 1;
        }
        hit
    }

    /// Serializes the predictor's mutable state: the full PHT (it is
    /// dense — initialized to weakly-not-taken and trained everywhere),
    /// the global history, occupied BTB slots only (the empty sentinel
    /// `(u64::MAX, 0)` is unreachable as a real mapping because tags are
    /// full PCs and `u64::MAX` is not a fetchable PC), the RAS
    /// bottom-first, and the counters.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::Writer) {
        w.u64(self.pht.len() as u64);
        w.bytes(&self.pht);
        w.u64(self.history);
        let occupied = self.btb.iter().filter(|&&e| e != (u64::MAX, 0)).count();
        w.u64(occupied as u64);
        for (ix, &(pc, target)) in self.btb.iter().enumerate() {
            if (pc, target) == (u64::MAX, 0) {
                continue;
            }
            w.u64(ix as u64);
            w.u64(pc);
            w.u64(target);
        }
        w.u64(self.ras.len() as u64);
        for &ra in &self.ras {
            w.u64(ra);
        }
        w.u64(self.stats.cond_predictions);
        w.u64(self.stats.cond_mispredicts);
        w.u64(self.stats.target_mispredicts);
    }

    /// Parses a [`BranchPredictor::save_state`] section, validating it
    /// against this predictor's configuration without mutating anything.
    pub(crate) fn read_state(
        &self,
        r: &mut crate::snapshot::Reader<'_>,
    ) -> crate::Result<BpredState> {
        let corrupt = |what: String| crate::SimError::Snapshot(format!("snapshot corrupt: {what}"));
        let pht_len = r.len_prefix(1)?;
        if pht_len != self.pht.len() {
            return Err(corrupt(format!(
                "PHT of {pht_len} entries does not fit a {}-entry gshare table",
                self.pht.len()
            )));
        }
        let pht = r.bytes(pht_len)?.to_vec();
        let history = r.u64()?;
        let n = r.len_prefix(24)?;
        let mut btb = Vec::with_capacity(n);
        for _ in 0..n {
            let ix = r.u64()? as usize;
            if ix >= self.btb.len() {
                return Err(corrupt(format!(
                    "BTB slot {ix} out of range for {} entries",
                    self.btb.len()
                )));
            }
            btb.push((ix, (r.u64()?, r.u64()?)));
        }
        let n = r.len_prefix(8)?;
        if n > self.config.ras_depth {
            return Err(corrupt(format!(
                "RAS of {n} frames exceeds the configured depth {}",
                self.config.ras_depth
            )));
        }
        let mut ras = Vec::with_capacity(n);
        for _ in 0..n {
            ras.push(r.u64()?);
        }
        Ok(BpredState {
            pht,
            history,
            btb,
            ras,
            stats: BpredStats {
                cond_predictions: r.u64()?,
                cond_mispredicts: r.u64()?,
                target_mispredicts: r.u64()?,
            },
        })
    }

    /// Installs a parsed state (resetting the BTB to cold first).
    pub(crate) fn apply_state(&mut self, state: BpredState) {
        self.pht.copy_from_slice(&state.pht);
        self.history = state.history;
        self.btb.fill((u64::MAX, 0));
        for (ix, entry) in state.btb {
            self.btb[ix] = entry;
        }
        self.ras = state.ras;
        self.stats = state.stats;
    }

    /// Looks `pc` up in the BTB and installs/updates the mapping. Returns
    /// true if the correct target was present.
    fn btb_lookup_update(&mut self, pc: u64, target: u64) -> bool {
        // 2-byte PC granularity, as in `cond_branch`: `>> 2` would map
        // branches 2 bytes apart to the same direct-mapped slot, where
        // the full-PC tags make them evict each other on every access.
        let ix = (pc as usize >> 1) % self.btb.len();
        let hit = self.btb[ix] == (pc, target);
        self.btb[ix] = (pc, target);
        hit
    }
}

/// Parsed, configuration-validated mutable state of the predictor.
#[derive(Debug)]
pub(crate) struct BpredState {
    pht: Vec<u8>,
    history: u64,
    /// `(slot, (pc, target))` for every occupied BTB slot.
    btb: Vec<(usize, (u64, u64))>,
    ras: Vec<u64>,
    stats: BpredStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred() -> BranchPredictor {
        BranchPredictor::new(BpredConfig::default())
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = pred();
        let mut wrong_late = 0;
        for i in 0..200 {
            if !p.cond_branch(0x1000, true, 0x2000) && i >= 100 {
                wrong_late += 1;
            }
        }
        assert!(
            wrong_late <= 2,
            "biased-taken branch should be learned, {wrong_late} wrong after warmup"
        );
    }

    #[test]
    fn alternating_branch_with_history() {
        // gshare uses global history, so a strict alternation becomes
        // predictable after warmup.
        let mut p = pred();
        let mut wrong_late = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let correct = p.cond_branch(0x1000, taken, 0x2000);
            if i >= 100 && !correct {
                wrong_late += 1;
            }
        }
        assert!(wrong_late <= 5, "{wrong_late} late mispredictions");
    }

    #[test]
    fn ras_predicts_returns() {
        let mut p = pred();
        // call from 0x100 returning to 0x104, then ret.
        p.indirect(0x100, 0x4000, Some(0x104));
        assert!(p.ret(0x104));
        // Mismatched return target misses.
        p.indirect(0x100, 0x4000, Some(0x104));
        assert!(!p.ret(0x999));
    }

    #[test]
    fn ras_depth_bounded() {
        let mut p = BranchPredictor::new(BpredConfig {
            ras_depth: 2,
            ..BpredConfig::default()
        });
        p.uncond_branch(0x0, 0x100, Some(0x4));
        p.uncond_branch(0x10, 0x100, Some(0x14));
        p.uncond_branch(0x20, 0x100, Some(0x24));
        assert!(p.ret(0x24));
        assert!(p.ret(0x14));
        assert!(!p.ret(0x4), "deepest frame was pushed out");
    }

    #[test]
    fn byte_granular_branch_pcs_do_not_alias() {
        // Two always-taken branches 2 bytes apart — a layout only
        // compressed programs produce — with different targets. Indexing
        // the BTB with `pc >> 2` would collapse them onto one slot whose
        // full-PC tag then thrashes: every prediction becomes a
        // misprediction once the directions are learned. At the true
        // 2-byte granularity they occupy distinct slots and both train.
        let mut p = pred();
        for _ in 0..200 {
            p.cond_branch(0x1000, true, 0x2000);
            p.cond_branch(0x1002, true, 0x3000);
        }
        let s = p.stats();
        assert_eq!(s.cond_predictions, 400);
        assert!(
            s.cond_mispredicts < 20,
            "adjacent compressed branches alias: {} mispredicts of {}",
            s.cond_mispredicts,
            s.cond_predictions
        );
    }

    #[test]
    fn btb_learns_targets() {
        let mut p = pred();
        assert!(!p.uncond_branch(0x40, 0x4000, None), "cold BTB");
        assert!(p.uncond_branch(0x40, 0x4000, None), "warm BTB");
        assert!(!p.indirect(0x40, 0x8000, None), "target changed");
        assert!(p.indirect(0x40, 0x8000, None));
    }
}
