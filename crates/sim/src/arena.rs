//! The process-wide frontend arena: one [`Predecode`] table per program
//! image and one [`SharedFrontend`] per (program image, production set)
//! pair, shared across every machine in the process by [`Arc`].
//!
//! A sweep process simulates the same image under dozens of engine and
//! cache configurations; before the arena, every cell rebuilt both
//! structures from scratch. Both are pure functions of architectural
//! inputs, so sharing is invisible to results (differential-tested in
//! `crates/bench/tests/shared_frontend.rs`): the arena only changes *who
//! builds and owns* the tables, never what they contain.
//!
//! Keying is by content fingerprint — the program's text bytes and the
//! controller's canonical `Debug` form — so distinct `Program` clones of
//! the same image share, while any architectural difference (down to one
//! production) gets its own entry. Sharing can be disabled for
//! differential testing via [`set_share_enabled`] or process-wide with
//! `DISE_FRONTEND=private`.

use dise_core::{Controller, SharedFrontend};
use dise_isa::{Predecode, Program};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Counters describing arena traffic since process start (or the last
/// [`clear`]). Reads are snapshots; sharing effectiveness is
/// `*_hits / (*_hits + *_builds)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Predecode tables built (one per distinct program image).
    pub predecode_builds: u64,
    /// Predecode requests served from the arena.
    pub predecode_hits: u64,
    /// Shared frontends built (one per distinct image × production set).
    pub frontend_builds: u64,
    /// Shared-frontend requests served from the arena.
    pub frontend_hits: u64,
}

#[derive(Default)]
struct Registry {
    predecodes: HashMap<u64, Arc<Predecode>>,
    frontends: HashMap<(u64, u64), Arc<SharedFrontend>>,
    stats: ArenaStats,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Runtime switch for the arena, AND-ed with the `DISE_FRONTEND`
/// environment gate. Exists for the differential conformance suite, which
/// must run shared and forced-private sweeps in one process.
static SHARE: AtomicBool = AtomicBool::new(true);

/// Enables or disables arena sharing at run time. Disabling does not
/// evict existing entries; it only makes subsequent requests build
/// private copies.
pub fn set_share_enabled(enabled: bool) {
    SHARE.store(enabled, Ordering::SeqCst);
}

/// Whether arena sharing is currently active: on by default, off when
/// [`set_share_enabled`]`(false)` was called or the process environment
/// sets `DISE_FRONTEND` to `private`, `off`, or `0`.
pub fn share_enabled() -> bool {
    static ENV_GATE: OnceLock<bool> = OnceLock::new();
    let env_allows = *ENV_GATE.get_or_init(|| {
        !matches!(
            std::env::var("DISE_FRONTEND").as_deref(),
            Ok("private") | Ok("off") | Ok("0")
        )
    });
    env_allows && SHARE.load(Ordering::SeqCst)
}

/// A snapshot of the arena's traffic counters.
pub fn stats() -> ArenaStats {
    registry().lock().expect("arena lock").stats
}

/// Drops every arena entry no machine references anymore — the weak-ref
/// reaping eviction policy from the ROADMAP. An entry whose `Arc` strong
/// count is 1 is held only by the registry itself: every cell that used
/// it has been dropped, so a sweep process keeps nothing, while a
/// long-running service (`dise_serve` calls this between jobs) sheds
/// images it will never simulate again instead of growing monotonically.
/// Returns the number of entries dropped. A reaped fingerprint that
/// shows up again simply rebuilds and re-registers — correctness is
/// unaffected (unit-tested below), only who pays the build.
pub fn reap_unreferenced() -> usize {
    let mut reg = registry().lock().expect("arena lock");
    let before = reg.predecodes.len() + reg.frontends.len();
    reg.frontends.retain(|_, f| Arc::strong_count(f) > 1);
    reg.predecodes.retain(|_, p| Arc::strong_count(p) > 1);
    before - (reg.predecodes.len() + reg.frontends.len())
}

/// Drops every arena entry and zeroes the counters. Tables already handed
/// out stay alive through their `Arc`s.
pub fn clear() {
    let mut reg = registry().lock().expect("arena lock");
    reg.predecodes.clear();
    reg.frontends.clear();
    reg.stats = ArenaStats::default();
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// `fmt::Write` sink that FNV-1a-hashes what is written to it, letting us
/// fingerprint a `Debug` form without materializing the string.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        fnv1a(&mut self.0, s.as_bytes());
        Ok(())
    }
}

/// Content fingerprint of a program image (text base + text bytes,
/// FNV-1a). Keys the arena and names immutable state in snapshot files:
/// restore re-resolves the image through the caller-provided machine and
/// uses this fingerprint to prove it is the same one.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &program.text_base.to_le_bytes());
    fnv1a(&mut h, &program.text);
    h
}

/// Fingerprints the architectural production state via the controller's
/// `Debug` form — deterministic because `ProductionSet` stores rules in a
/// `Vec` and sequences in a `BTreeMap`. Shared with the snapshot format,
/// which records it instead of serializing the (immutable) production
/// set.
pub fn controller_fingerprint(controller: &Controller) -> u64 {
    let mut w = FnvWriter(FNV_OFFSET);
    write!(w, "{controller:?}").expect("hashing never fails");
    w.0
}

/// FNV-1a fingerprint of any value's `Debug` form. The snapshot format
/// uses it for configuration state whose types already maintain a
/// canonical, result-complete `Debug` representation (`SimConfig`,
/// `DedicatedDict`).
pub(crate) fn debug_fingerprint<T: std::fmt::Debug>(value: &T) -> u64 {
    let mut w = FnvWriter(FNV_OFFSET);
    write!(w, "{value:?}").expect("hashing never fails");
    w.0
}

/// The predecode table for `program`'s image: shared from the arena when
/// sharing is enabled, freshly built otherwise.
pub fn predecode_for(program: &Program) -> Arc<Predecode> {
    if !share_enabled() {
        return Arc::new(program.predecode());
    }
    let key = program_fingerprint(program);
    let mut reg = registry().lock().expect("arena lock");
    // `covers` guards the (astronomically unlikely) fingerprint collision:
    // same hash, different base or length falls back to a private build.
    if let Some(pd) = reg.predecodes.get(&key).map(Arc::clone) {
        if pd.covers(program) {
            reg.stats.predecode_hits += 1;
            return pd;
        }
        return Arc::new(program.predecode());
    }
    let pd = Arc::new(program.predecode());
    reg.stats.predecode_builds += 1;
    reg.predecodes.insert(key, Arc::clone(&pd));
    pd
}

fn build_frontend(controller: &Controller, pd: &Predecode) -> SharedFrontend {
    // Shorts never reach the engine (they go to the dedicated dictionary),
    // so only full instruction words feed the architectural memo.
    SharedFrontend::build(
        controller,
        pd.items()
            .filter_map(|pi| pi.item.inst().map(|inst| (inst, pi.raw))),
    )
}

/// The shared frontend for `(program image, controller's production
/// state)`: shared from the arena when sharing is enabled, freshly built
/// otherwise. Building needs a predecode table; the arena reuses (or
/// seeds) its predecode entry for the image under the same lock.
pub fn frontend_for(program: &Program, controller: &Controller) -> Arc<SharedFrontend> {
    if !share_enabled() {
        return Arc::new(build_frontend(controller, &program.predecode()));
    }
    let pkey = program_fingerprint(program);
    let key = (pkey, controller_fingerprint(controller));
    let mut reg = registry().lock().expect("arena lock");
    if let Some(f) = reg.frontends.get(&key).map(Arc::clone) {
        reg.stats.frontend_hits += 1;
        return f;
    }
    let pd = match reg.predecodes.get(&pkey) {
        Some(pd) if pd.covers(program) => Arc::clone(pd),
        Some(_) => Arc::new(program.predecode()),
        None => {
            let pd = Arc::new(program.predecode());
            reg.stats.predecode_builds += 1;
            reg.predecodes.insert(pkey, Arc::clone(&pd));
            pd
        }
    };
    let f = Arc::new(build_frontend(controller, &pd));
    reg.stats.frontend_builds += 1;
    reg.frontends.insert(key, Arc::clone(&f));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::Assembler;

    fn program(base: u64) -> Program {
        Assembler::new(base)
            .assemble(
                "       lda r1, 4(r31)
                 loop:  subq r1, #1, r1
                        bne r1, loop
                        halt",
            )
            .unwrap()
    }

    /// Serializes the tests in this module: one toggles the process-wide
    /// share switch and the other reaps, and each would see the other's
    /// side effects if interleaved.
    static ARENA_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn arena_shares_by_content_and_respects_the_switch() {
        let _serial = ARENA_TEST_LOCK.lock().unwrap();
        // Other tests in this binary hit the arena concurrently, so only
        // pointer identity and counter *deltas* (monotonic inequalities)
        // are asserted.
        let before = stats();
        let p = program(0x0400_0000);
        let clone = p.clone();
        let a = predecode_for(&p);
        let b = predecode_for(&clone);
        assert!(Arc::ptr_eq(&a, &b), "identical images must share");
        let other = program(0x0500_0000);
        let c = predecode_for(&other);
        assert!(!Arc::ptr_eq(&a, &c), "different images must not share");

        let controller = Controller::new(dise_core::ProductionSet::new());
        let f1 = frontend_for(&p, &controller);
        let f2 = frontend_for(&clone, &controller);
        assert!(Arc::ptr_eq(&f1, &f2));
        let after = stats();
        assert!(after.predecode_hits > before.predecode_hits);
        assert!(after.frontend_builds > before.frontend_builds);
        assert!(after.frontend_hits > before.frontend_hits);

        set_share_enabled(false);
        let d = predecode_for(&p);
        assert!(!Arc::ptr_eq(&a, &d), "disabled arena builds privately");
        set_share_enabled(true);
    }

    #[test]
    fn reap_drops_only_unreferenced_entries_and_rebuilds_on_reuse() {
        let _serial = ARENA_TEST_LOCK.lock().unwrap();
        // Bases unique to this test: no other test (or concurrent
        // thread) touches these fingerprints.
        let p = program(0x0600_0000);
        let controller = Controller::new(dise_core::ProductionSet::new());

        let pd = predecode_for(&p);
        let fe = frontend_for(&p, &controller);
        // Held entries survive a reap (strong count 2: registry + us).
        reap_unreferenced();
        assert!(
            Arc::ptr_eq(&pd, &predecode_for(&p)),
            "live entries must survive reaping"
        );
        assert!(Arc::ptr_eq(&fe, &frontend_for(&p, &controller)));

        // Dropped entries are reaped: both of this test's entries are
        // now unreferenced, so at least two go.
        drop(pd);
        drop(fe);
        let reaped = reap_unreferenced();
        assert!(reaped >= 2, "both unreferenced entries reaped, got {reaped}");

        // Fingerprint re-registration rebuilds correctly: the next
        // request must *build* (the key is unique to this test, so a hit
        // is impossible after the reap) and produce a table that covers
        // the image and decodes like a private build.
        let before = stats();
        let pd2 = predecode_for(&p);
        let after = stats();
        assert!(
            after.predecode_builds > before.predecode_builds,
            "reaped fingerprint must rebuild on re-registration"
        );
        assert!(pd2.covers(&p), "rebuilt table covers the image");
        let fe2 = frontend_for(&p, &controller);
        assert!(
            stats().frontend_builds > after.frontend_builds,
            "reaped frontend must rebuild on re-registration"
        );
        // And the rebuilt entries are shared again on the next request.
        assert!(Arc::ptr_eq(&pd2, &predecode_for(&p)));
        assert!(Arc::ptr_eq(&fe2, &frontend_for(&p, &controller)));
    }
}
