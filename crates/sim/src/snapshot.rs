//! Versioned snapshot/restore of mutable simulation state.
//!
//! A snapshot serializes *mutable state only*: the [`Machine`]'s
//! registers, resident memory pages, `(PC, DISEPC)` control point,
//! in-flight expansion state and instruction counters; the engine's
//! PT/RT placement, LRU stamps and statistics; and — for full
//! [`Simulator`] snapshots — every flat timing structure (slot
//! allocators, ROB/RS windows, register/store scoreboards, caches,
//! branch predictor, accumulated counters).
//!
//! Immutable state is **not** serialized. The program image, the
//! production set, the dedicated dictionary and the timing configuration
//! are recorded only as content fingerprints (the same FNV-1a
//! fingerprints the frontend arena keys on — see [`crate::arena`]); the
//! caller reconstructs the scenario exactly as it would for a fresh run
//! and restore verifies the fingerprints before injecting anything.
//! Caches of pure derived state — the translated-block cache, engine
//! expansion/instantiation memos, block touch plans — are dropped and
//! rebuilt cold: restoring bumps the engine generation, so no stale
//! translation can survive, and all of them are bit-identity-neutral by
//! construction.
//!
//! The correctness contract, enforced by `tests/snapshot_resume.rs`:
//! snapshot → restore → run is byte-identical to the uninterrupted run
//! in final registers, memory, name-sorted telemetry export and
//! suspension `(PC, DISEPC)` state — including snapshots taken
//! mid-expansion while suspended inside a macro body.
//!
//! ## Format
//!
//! Little-endian throughout. A 4-byte magic (`DSNP`), a `u32` format
//! version ([`SNAPSHOT_VERSION`]), a kind byte (machine / simulator),
//! the fingerprint block, then the mutable-state sections. Any version
//! or fingerprint mismatch fails with an error naming the expected and
//! found values; truncated input fails with the byte offset.

use crate::machine::Machine;
use crate::pipeline::Simulator;
use crate::{Result, SimError};

/// File magic: "DSNP" (DISE snapshot).
pub(crate) const MAGIC: [u8; 4] = *b"DSNP";

/// Current snapshot format version. Bump on any layout change; readers
/// reject every version they were not built for.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Kind byte: functional-machine snapshot.
pub(crate) const KIND_MACHINE: u8 = 0;
/// Kind byte: full timing-simulator snapshot.
pub(crate) const KIND_SIMULATOR: u8 = 1;

// ---------------------------------------------------------------------
// Byte-level writer/reader
// ---------------------------------------------------------------------

/// Little-endian byte sink for snapshot sections.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Bounds-checked little-endian reader; every read past the end fails
/// with the offset, so corrupt/truncated snapshots produce an actionable
/// error instead of a panic.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(SimError::Snapshot(format!(
                "snapshot truncated: needed {n} bytes at offset {} but only {} remain",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SimError::Snapshot(format!(
                "snapshot corrupt: boolean byte {other} at offset {}",
                self.pos - 1
            ))),
        }
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// A length prefix that must be satisfiable by the remaining bytes
    /// (guards against allocating from a corrupt length field).
    pub(crate) fn len_prefix(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if elem_size > 0 && n > remaining / elem_size {
            return Err(SimError::Snapshot(format!(
                "snapshot corrupt: length {n} at offset {} exceeds the {} remaining bytes",
                self.pos - 8,
                remaining
            )));
        }
        Ok(n)
    }

    /// Fails unless every byte has been consumed — trailing garbage means
    /// the snapshot and reader disagree about the layout.
    pub(crate) fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(SimError::Snapshot(format!(
                "snapshot has {} trailing bytes after the final section",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

pub(crate) fn write_header(w: &mut Writer, kind: u8) {
    w.bytes(&MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u8(kind);
}

pub(crate) fn read_header(r: &mut Reader<'_>, want_kind: u8) -> Result<()> {
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(SimError::Snapshot(format!(
            "not a DISE snapshot: magic {magic:02x?}, expected {MAGIC:02x?} (\"DSNP\")"
        )));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SimError::Snapshot(format!(
            "unsupported snapshot format version {version}: this build reads version \
             {SNAPSHOT_VERSION} only"
        )));
    }
    let kind = r.u8()?;
    if kind != want_kind {
        let name = |k| match k {
            KIND_MACHINE => "a functional-machine snapshot",
            KIND_SIMULATOR => "a timing-simulator snapshot",
            _ => "an unknown snapshot kind",
        };
        return Err(SimError::Snapshot(format!(
            "snapshot kind mismatch: the file holds {} (kind {kind}) but the caller asked to \
             restore {} (kind {want_kind})",
            name(kind),
            name(want_kind)
        )));
    }
    Ok(())
}

/// Compares a recorded fingerprint against the restore target's,
/// producing the error the acceptance contract requires: it names what
/// diverged and both values.
pub(crate) fn check_fingerprint(what: &str, snapshot: u64, target: u64) -> Result<()> {
    if snapshot != target {
        return Err(SimError::Snapshot(format!(
            "{what} fingerprint mismatch: snapshot was taken against {snapshot:#018x} but the \
             restore target resolves to {target:#018x}; reconstruct the identical scenario \
             (same {what}) before restoring"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Serializes a functional machine's mutable state.
///
/// The bytes are also the canonical *final-state digest*: two machines
/// with byte-equal snapshots have identical registers, memory,
/// `(PC, DISEPC)` suspension state, counters and engine state — the
/// differential suite compares resumed and uninterrupted runs this way.
pub fn save_machine(m: &Machine) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, KIND_MACHINE);
    m.save_state(&mut w);
    w.into_bytes()
}

/// Restores a functional machine's mutable state from [`save_machine`]
/// bytes into `m`, which the caller must have constructed exactly as for
/// a fresh run of the same scenario: same program, same attached engine
/// (same production set and engine configuration), same dedicated
/// dictionary. Speed knobs (`fast_path`, `block_cache`, frontend
/// sharing) may differ — they are bit-identity-neutral by construction.
///
/// # Errors
///
/// Fails without mutating `m` on a bad magic/version/kind, truncated
/// bytes, or any fingerprint mismatch (program image, production set,
/// dedicated dictionary) — each error names the expected and found
/// values.
pub fn restore_machine(m: &mut Machine, bytes: &[u8]) -> Result<()> {
    let mut r = Reader::new(bytes);
    read_header(&mut r, KIND_MACHINE)?;
    let state = m.read_state(&mut r)?;
    r.finish()?;
    m.apply_state(state)
}

/// Serializes a timing simulator's full mutable state (the oracle
/// machine plus every timing structure).
pub fn save_simulator(sim: &Simulator) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, KIND_SIMULATOR);
    sim.save_state(&mut w);
    w.into_bytes()
}

/// Restores a timing simulator from [`save_simulator`] bytes into `sim`,
/// which the caller must have constructed with the same [`crate::SimConfig`]
/// over a machine set up exactly as for a fresh run (see
/// [`restore_machine`] for what "exactly" requires). Telemetry knobs
/// (trace ring, watchdog, shadow oracle) are not part of the snapshot:
/// they are observability-only and excluded from the config fingerprint.
///
/// # Errors
///
/// As [`restore_machine`], plus a fingerprint check on the
/// result-affecting `SimConfig` fields.
pub fn restore_simulator(sim: &mut Simulator, bytes: &[u8]) -> Result<()> {
    let mut r = Reader::new(bytes);
    read_header(&mut r, KIND_SIMULATOR)?;
    let state = sim.read_state(&mut r)?;
    r.finish()?;
    sim.apply_state(state)
}

// ---------------------------------------------------------------------
// DISE_SNAPSHOT environment setting
// ---------------------------------------------------------------------

/// Parses a `DISE_SNAPSHOT` setting: `"off"` disables checkpointing,
/// `"every:<n>"` (n ≥ 1) checkpoints every `n` dynamic instructions.
///
/// # Errors
///
/// Any other value is rejected with an actionable message.
pub fn parse_snapshot(v: &str) -> std::result::Result<Option<u64>, String> {
    if v == "off" {
        return Ok(None);
    }
    if let Some(n) = v.strip_prefix("every:") {
        match n.parse::<u64>() {
            Ok(n) if n >= 1 => return Ok(Some(n)),
            _ => {}
        }
    }
    Err(format!(
        "DISE_SNAPSHOT must be \"off\" or \"every:<n>\" with n >= 1, got {v:?}; unset it to use \
         the default (off)"
    ))
}

/// The process-wide `DISE_SNAPSHOT` default (read once): `Some(n)` to
/// checkpoint every `n` dynamic instructions, `None` when unset or
/// `off`. Panics with the [`parse_snapshot`] message on an invalid
/// setting — a silently ignored typo would disable crash-resume for
/// every run after it.
pub fn snapshot_env() -> Option<u64> {
    static ENV_GATE: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *ENV_GATE.get_or_init(|| match std::env::var("DISE_SNAPSHOT") {
        Ok(v) => match parse_snapshot(&v) {
            Ok(every) => every,
            Err(why) => panic!("{why}"),
        },
        Err(_) => None,
    })
}

// ---------------------------------------------------------------------
// Shared codecs (instruction, engine state)
// ---------------------------------------------------------------------

pub(crate) fn write_inst(w: &mut Writer, inst: &dise_isa::Inst) {
    w.u8(inst.op.number());
    w.u8(inst.ra.index() as u8);
    w.u8(inst.rb.index() as u8);
    w.u8(inst.rc.index() as u8);
    w.i64(inst.imm);
    w.bool(inst.uses_lit);
    w.bool(inst.dise_branch);
}

pub(crate) fn read_inst(r: &mut Reader<'_>) -> Result<dise_isa::Inst> {
    let op_num = r.u8()?;
    let op = dise_isa::Op::from_number(op_num).ok_or_else(|| {
        SimError::Snapshot(format!("snapshot corrupt: unknown opcode number {op_num}"))
    })?;
    let mut reg = |field: &str| -> Result<dise_isa::Reg> {
        let ix = r.u8()?;
        if ix as usize >= dise_isa::reg::NUM_REGS {
            return Err(SimError::Snapshot(format!(
                "snapshot corrupt: register index {ix} in field {field} out of range"
            )));
        }
        Ok(dise_isa::Reg::from_index(ix))
    };
    let (ra, rb, rc) = (reg("ra")?, reg("rb")?, reg("rc")?);
    Ok(dise_isa::Inst {
        op,
        ra,
        rb,
        rc,
        imm: r.i64()?,
        uses_lit: r.bool()?,
        dise_branch: r.bool()?,
    })
}

pub(crate) fn write_engine_state(w: &mut Writer, state: &dise_core::EngineState) {
    w.u64(state.pt_resident.len() as u64);
    for &ix in &state.pt_resident {
        w.u64(ix as u64);
    }
    match &state.rt {
        dise_core::RtState::Cache { keys, stamps, clock } => {
            w.u8(0);
            w.u64(keys.len() as u64);
            for &k in keys {
                w.u64(k);
            }
            for &s in stamps {
                w.u64(s);
            }
            w.u64(*clock);
        }
        dise_core::RtState::Perfect { resident } => {
            w.u8(1);
            w.u64(resident.len() as u64);
            for &(id, base) in resident {
                w.u32(id);
                w.u8(base);
            }
        }
    }
    let s = &state.stats;
    for v in [
        s.inspected,
        s.expansions,
        s.replacement_insts,
        s.pt_misses,
        s.rt_misses,
        s.composed_fills,
        s.stall_cycles,
    ] {
        w.u64(v);
    }
}

pub(crate) fn read_engine_state(r: &mut Reader<'_>) -> Result<dise_core::EngineState> {
    let n = r.len_prefix(8)?;
    let mut pt_resident = Vec::with_capacity(n);
    for _ in 0..n {
        pt_resident.push(r.u64()? as usize);
    }
    let rt = match r.u8()? {
        0 => {
            let n = r.len_prefix(8)?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(r.u64()?);
            }
            let mut stamps = Vec::with_capacity(n);
            for _ in 0..n {
                stamps.push(r.u64()?);
            }
            dise_core::RtState::Cache {
                keys,
                stamps,
                clock: r.u64()?,
            }
        }
        1 => {
            let n = r.len_prefix(5)?;
            let mut resident = Vec::with_capacity(n);
            for _ in 0..n {
                resident.push((r.u32()?, r.u8()?));
            }
            dise_core::RtState::Perfect { resident }
        }
        other => {
            return Err(SimError::Snapshot(format!(
                "snapshot corrupt: unknown RT organization tag {other}"
            )))
        }
    };
    let mut stat = || r.u64();
    let stats = dise_core::EngineStats {
        inspected: stat()?,
        expansions: stat()?,
        replacement_insts: stat()?,
        pt_misses: stat()?,
        rt_misses: stat()?,
        composed_fills: stat()?,
        stall_cycles: stat()?,
    };
    Ok(dise_core::EngineState {
        pt_resident,
        rt,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_snapshot_strictly() {
        assert_eq!(parse_snapshot("off"), Ok(None));
        assert_eq!(parse_snapshot("every:1"), Ok(Some(1)));
        assert_eq!(parse_snapshot("every:250000"), Ok(Some(250_000)));
        for bad in ["", "on", "every", "every:", "every:0", "every:-3", "EVERY:5", "1000"] {
            let err = parse_snapshot(bad).unwrap_err();
            assert!(
                err.contains("DISE_SNAPSHOT") && err.contains("every:<n>"),
                "unhelpful error for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut w = Writer::new();
        w.u64(7);
        let bytes = w.into_bytes();
        // Truncated.
        let mut r = Reader::new(&bytes[..5]);
        let err = r.u64().unwrap_err();
        assert!(matches!(&err, SimError::Snapshot(m) if m.contains("truncated")), "{err:?}");
        // Trailing garbage.
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 7);
        let err = r.finish().unwrap_err();
        assert!(matches!(&err, SimError::Snapshot(m) if m.contains("trailing")), "{err:?}");
        // Corrupt length prefix.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.len_prefix(8).unwrap_err();
        assert!(matches!(&err, SimError::Snapshot(m) if m.contains("length")), "{err:?}");
    }

    #[test]
    fn header_rejects_bad_magic_version_kind() {
        let mut w = Writer::new();
        write_header(&mut w, KIND_MACHINE);
        let good = w.into_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        let err = read_header(&mut Reader::new(&bad_magic), KIND_MACHINE).unwrap_err();
        assert!(matches!(&err, SimError::Snapshot(m) if m.contains("magic")), "{err:?}");

        let mut bad_version = good.clone();
        bad_version[4] = 99;
        let err = read_header(&mut Reader::new(&bad_version), KIND_MACHINE).unwrap_err();
        assert!(
            matches!(&err, SimError::Snapshot(m)
                if m.contains("version 99") && m.contains("version 1")),
            "{err:?}"
        );

        let err = read_header(&mut Reader::new(&good), KIND_SIMULATOR).unwrap_err();
        assert!(matches!(&err, SimError::Snapshot(m) if m.contains("kind")), "{err:?}");
    }

    #[test]
    fn fingerprint_errors_name_both_values() {
        let err = check_fingerprint("program image", 0xAB, 0xCD).unwrap_err();
        let SimError::Snapshot(m) = &err else {
            panic!("{err:?}")
        };
        assert!(m.contains("program image"), "{m}");
        assert!(m.contains("0x00000000000000ab"), "{m}");
        assert!(m.contains("0x00000000000000cd"), "{m}");
    }

    #[test]
    fn inst_codec_round_trips() {
        for text in [
            "stq r1, -8(r2)",
            "addq r3, #255, r5",
            "srl r2, #26, $dr1",
            "ldq r7, 16(r3)",
            "halt",
        ] {
            let inst: dise_isa::Inst = text.parse().unwrap();
            let mut w = Writer::new();
            write_inst(&mut w, &inst);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(read_inst(&mut r).unwrap(), inst, "{text}");
            r.finish().unwrap();
        }
        // A DISE-internal branch (never encodable, still serializable).
        let dise = dise_isa::Inst {
            op: dise_isa::Op::Bne,
            ra: dise_isa::Reg::from_index(20),
            rb: dise_isa::Reg::from_index(31),
            rc: dise_isa::Reg::from_index(31),
            imm: -16,
            uses_lit: false,
            dise_branch: true,
        };
        let mut w = Writer::new();
        write_inst(&mut w, &dise);
        let bytes = w.into_bytes();
        assert_eq!(read_inst(&mut Reader::new(&bytes)).unwrap(), dise);
    }
}
