//! Sparse paged data memory.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Multiplicative hasher for page numbers. Page numbers are already
/// well-distributed (distinct segments), so a single Fibonacci multiply
/// beats SipHash by an order of magnitude on the simulator's hottest map.
#[derive(Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold bytes in as one word.
        let mut word = [0u8; 8];
        word[..bytes.len().min(8)].copy_from_slice(&bytes[..bytes.len().min(8)]);
        self.write_u64(u64::from_le_bytes(word));
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(32);
    }
}

/// A sparse 64-bit byte-addressable memory. Pages are allocated on first
/// touch and zero-filled, so programs may use any address without explicit
/// mapping (fault isolation is an ACF concern, not a memory-model one).
///
/// ```
/// use dise_sim::Memory;
/// let mut m = Memory::new();
/// m.store_u64(0x8000_0000, 0xDEAD_BEEF);
/// assert_eq!(m.load_u64(0x8000_0000), 0xDEAD_BEEF);
/// assert_eq!(m.load_u64(0x1234_5678), 0, "untouched memory reads zero");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>, BuildHasherDefault<PageHasher>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]))
    }

    /// Loads one byte.
    #[inline]
    pub fn load_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Stores one byte.
    #[inline]
    pub fn store_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Loads a little-endian 32-bit value (may straddle pages; the address
    /// space wraps, so even `u64::MAX` is a valid base).
    #[inline]
    pub fn load_u32(&self, addr: u64) -> u32 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            // Fast path: the word lies within one page — one map lookup.
            return match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => u32::from_le_bytes(p[off..off + 4].try_into().expect("4 bytes")),
                None => 0,
            };
        }
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.load_u8(addr.wrapping_add(i as u64));
        }
        u32::from_le_bytes(bytes)
    }

    /// Stores a little-endian 32-bit value.
    #[inline]
    pub fn store_u32(&mut self, addr: u64, value: u32) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 4 {
            self.page_mut(addr)[off..off + 4].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Loads a little-endian 64-bit value.
    #[inline]
    pub fn load_u64(&self, addr: u64) -> u64 {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            return match self.pages.get(&(addr >> PAGE_BITS)) {
                Some(p) => u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes")),
                None => 0,
            };
        }
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.load_u8(addr.wrapping_add(i as u64));
        }
        u64::from_le_bytes(bytes)
    }

    /// Stores a little-endian 64-bit value.
    #[inline]
    pub fn store_u64(&mut self, addr: u64, value: u64) {
        let off = (addr as usize) & (PAGE_SIZE - 1);
        if off <= PAGE_SIZE - 8 {
            self.page_mut(addr)[off..off + 8].copy_from_slice(&value.to_le_bytes());
            return;
        }
        for (i, b) in value.to_le_bytes().into_iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u64), b);
        }
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn store_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.store_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Serializes every resident page, sorted by page number so the bytes
    /// are a deterministic function of memory contents (the map's
    /// iteration order is not).
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::Writer) {
        let mut page_nos: Vec<u64> = self.pages.keys().copied().collect();
        page_nos.sort_unstable();
        w.u64(page_nos.len() as u64);
        for no in page_nos {
            w.u64(no);
            w.bytes(&self.pages[&no][..]);
        }
    }

    /// Parses a [`Memory::save_state`] section into a fresh memory (the
    /// caller swaps it in only once the whole snapshot has validated).
    pub(crate) fn read_state(r: &mut crate::snapshot::Reader<'_>) -> crate::Result<Memory> {
        let n = r.len_prefix(8 + PAGE_SIZE)?;
        let mut mem = Memory::new();
        for _ in 0..n {
            let no = r.u64()?;
            let bytes = r.bytes(PAGE_SIZE)?;
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(bytes);
            mem.pages.insert(no, page);
        }
        Ok(mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut m = Memory::new();
        assert_eq!(m.load_u64(0), 0);
        m.store_u64(16, u64::MAX);
        assert_eq!(m.load_u64(16), u64::MAX);
        m.store_u32(16, 7);
        assert_eq!(m.load_u32(16), 7);
        assert_eq!(m.load_u64(16), (u64::MAX << 32) | 7);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let boundary = PAGE_SIZE as u64 - 4;
        m.store_u64(boundary, 0x1122_3344_5566_7788);
        assert_eq!(m.load_u64(boundary), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn wraparound_access_is_defined() {
        let mut m = Memory::new();
        m.store_u64(u64::MAX - 3, 0x0102_0304_0506_0708);
        assert_eq!(m.load_u64(u64::MAX - 3), 0x0102_0304_0506_0708);
        assert_eq!(m.load_u8(0), 0x04, "high bytes wrapped to address 0");
    }

    #[test]
    fn sparse_addresses() {
        let mut m = Memory::new();
        m.store_u8(0xFFFF_FFFF_FFFF_FFFF, 0xAB);
        assert_eq!(m.load_u8(0xFFFF_FFFF_FFFF_FFFF), 0xAB);
        m.store_bytes(0x4_0000_0000, &[1, 2, 3]);
        assert_eq!(m.load_u8(0x4_0000_0002), 3);
    }
}
