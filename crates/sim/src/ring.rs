//! Fixed-capacity ring buffers for the timing model's in-flight windows.
//!
//! The simulator tracks ROB and reservation-station occupancy as FIFOs of
//! timestamps. Both are bounded by construction (an entry is popped before
//! a push whenever the window is full), so a fixed-size ring that never
//! reallocates replaces `VecDeque` on the hot path. Capacity is exact —
//! not rounded to a power of two — because ROB/RS sizes (128, 80) are
//! machine parameters, and a modulo-free wrap test keeps indexing cheap.

/// A fixed-capacity FIFO of `u64` timestamps. Pushing into a full ring
/// panics: the timing model maintains the invariant that it pops before it
/// pushes at capacity, and silently dropping an in-flight instruction
/// would corrupt occupancy accounting.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Box<[u64]>,
    /// Index of the oldest entry.
    head: usize,
    len: usize,
}

impl Ring {
    /// Creates an empty ring holding at most `cap` entries.
    pub fn with_capacity(cap: usize) -> Ring {
        assert!(cap > 0, "zero-capacity window");
        Ring {
            buf: vec![0; cap].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Number of entries currently in flight.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Appends a timestamp at the tail.
    #[inline]
    pub fn push(&mut self, v: u64) {
        assert!(self.len < self.buf.len(), "ring buffer overflow");
        let mut tail = self.head + self.len;
        if tail >= self.buf.len() {
            tail -= self.buf.len();
        }
        self.buf[tail] = v;
        self.len += 1;
    }

    /// Iterates the in-flight timestamps oldest-first without draining
    /// them (snapshot serialization walks the window in FIFO order).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| {
            let mut ix = self.head + i;
            if ix >= self.buf.len() {
                ix -= self.buf.len();
            }
            self.buf[ix]
        })
    }

    /// Removes and returns the oldest timestamp.
    #[inline]
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.head];
        self.head += 1;
        if self.head == self.buf.len() {
            self.head = 0;
        }
        self.len -= 1;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_with_wraparound() {
        let mut r = Ring::with_capacity(3);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 3);
        // Fill, drain partially, refill — forces head/tail to wrap several
        // times through the 3-slot buffer.
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..10 {
            while r.len() < 3 {
                r.push(next_in);
                next_in += 1;
            }
            assert_eq!(r.pop(), Some(next_out));
            assert_eq!(r.pop(), Some(next_out + 1));
            next_out += 2;
        }
        // Drain the tail in order.
        while let Some(v) = r.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, next_in);
        assert!(r.is_empty());
    }

    #[test]
    fn capacity_one() {
        let mut r = Ring::with_capacity(1);
        for i in 0..5 {
            r.push(i);
            assert_eq!(r.len(), 1);
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "ring buffer overflow")]
    fn overflow_panics() {
        let mut r = Ring::with_capacity(2);
        r.push(1);
        r.push(2);
        r.push(3);
    }

    #[test]
    fn pop_before_push_at_capacity_never_overflows() {
        // The timing model's usage pattern: once the window is full, every
        // push is preceded by a pop (back-pressure).
        let mut r = Ring::with_capacity(80);
        for i in 0..1000u64 {
            if r.len() >= r.capacity() {
                let freed = r.pop().unwrap();
                assert_eq!(freed, i - 80);
            }
            r.push(i);
        }
        assert_eq!(r.len(), 80);
    }
}
