#![warn(missing_docs)]

//! # dise-sim: the functional machine and cycle-level timing simulator
//!
//! The paper evaluates DISE on SimpleScalar's Alpha modules, modeling a
//! MIPS R10000-like 4-way superscalar with a 12-stage pipeline, a 128-entry
//! reorder buffer, 80 reservation stations, aggressive branch and load
//! speculation, 32KB L1 instruction and data caches and a unified 1MB L2
//! (paper §4). This crate is that substrate, built from scratch:
//!
//! * [`Machine`] — the functional (architectural) machine: registers
//!   (32 architectural + 16 DISE dedicated), sparse paged memory, full
//!   instruction semantics, and the fetch-side expansion loop implementing
//!   the PC:DISEPC two-level control model of paper §2. It executes DISE
//!   replacement sequences through an attached [`dise_core::DiseEngine`]
//!   and 2-byte codewords through an attached [`DedicatedDict`] (the
//!   dedicated-decompressor baseline).
//! * [`Simulator`] — the cycle-level timing model, driven by the functional
//!   machine as an oracle: a width-limited front end with an I-cache and a
//!   gshare+BTB+RAS branch predictor, ROB/RS occupancy limits, per-class
//!   execution latencies, store-to-load forwarding, and the three DISE
//!   expansion cost models of Figure 6 ([`ExpansionCost`]).
//! * [`Cache`] — parameterized set-associative caches with an L2 behind
//!   the L1s.
//!
//! ```
//! use dise_sim::{Machine, Simulator, SimConfig};
//! use dise_isa::Assembler;
//!
//! let program = Assembler::new(0x0400_0000)
//!     .assemble(
//!         "       lda r1, 100(r31)
//!          loop:  subq r1, #1, r1
//!                 bne r1, loop
//!                 halt",
//!     )
//!     .unwrap();
//!
//! // Functional run.
//! let mut m = Machine::load(&program);
//! let run = m.run(10_000).unwrap();
//! assert!(run.halted);
//!
//! // Timing run.
//! let mut sim = Simulator::new(SimConfig::default(), Machine::load(&program));
//! let result = sim.run(10_000).unwrap();
//! assert!(result.stats.cycles > 0);
//! ```

pub mod arena;
pub mod block;
pub mod bpred;
pub mod cache;
pub mod machine;
pub mod mem;
pub mod pipeline;
pub mod ring;
pub mod snapshot;
pub mod telemetry;

pub use block::BlockStats;
pub use bpred::{BpredConfig, BranchPredictor};
pub use cache::{Cache, CacheConfig, MemoryHierarchy, MemoryHierarchyConfig};
pub use machine::{parse_block_cache, DedicatedDict, Machine, MachineConfig, RunResult, StepInfo};
pub use mem::Memory;
pub use pipeline::{ExpansionCost, SimConfig, SimResult, SimStats, Simulator};
pub use snapshot::{
    parse_snapshot, restore_machine, restore_simulator, save_machine, save_simulator,
    snapshot_env, SNAPSHOT_VERSION,
};
pub use telemetry::{
    AnomalyReport, EventRing, Log2Histogram, StallCause, StatValue, StatsRegistry, TraceEvent,
    TraceKind,
};

/// Errors produced by functional or timing simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Instruction fetch failed (PC outside text, undecodable bytes).
    Fetch(dise_isa::IsaError),
    /// The DISE engine reported an error (unknown sequence, bad
    /// instantiation).
    Engine(dise_core::CoreError),
    /// A reserved codeword reached execution with no engine able to expand
    /// it.
    UnexpandedCodeword {
        /// PC of the offending codeword.
        pc: u64,
    },
    /// A 2-byte codeword was fetched but no dedicated dictionary is
    /// attached, or the index is out of range.
    BadShortCodeword {
        /// PC of the offending codeword.
        pc: u64,
        /// The dictionary index.
        index: u16,
    },
    /// The step/cycle budget was exhausted before the program halted.
    OutOfFuel,
    /// The telemetry watchdog fired or a shadow functional oracle
    /// diverged. The full [`AnomalyReport`] was dumped to stderr and
    /// remains retrievable via [`Simulator::anomaly`].
    Anomaly(
        /// The trigger reason (the report's headline).
        String,
    ),
    /// Snapshot serialization or restore failed: unknown format version,
    /// truncated bytes, or a fingerprint that does not match the restore
    /// target (see [`crate::snapshot`]). The message names the offending
    /// version or fingerprint values.
    Snapshot(
        /// What went wrong, with the expected/found values spelled out.
        String,
    ),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Fetch(e) => write!(f, "fetch failed: {e}"),
            SimError::Engine(e) => write!(f, "DISE engine error: {e}"),
            SimError::UnexpandedCodeword { pc } => {
                write!(f, "codeword executed unexpanded at {pc:#x}")
            }
            SimError::BadShortCodeword { pc, index } => {
                write!(f, "undecodable short codeword {index} at {pc:#x}")
            }
            SimError::OutOfFuel => f.write_str("simulation budget exhausted before halt"),
            SimError::Anomaly(reason) => write!(f, "simulator anomaly: {reason}"),
            SimError::Snapshot(why) => write!(f, "snapshot error: {why}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<dise_isa::IsaError> for SimError {
    fn from(e: dise_isa::IsaError) -> SimError {
        SimError::Fetch(e)
    }
}

impl From<dise_core::CoreError> for SimError {
    fn from(e: dise_core::CoreError) -> SimError {
        SimError::Engine(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, SimError>;
