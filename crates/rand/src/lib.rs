//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer ranges. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across
//! platforms and versions, which is all the workload generator needs
//! (the real `rand` makes no cross-version stream guarantees anyway,
//! so pinning our own stream is strictly more reproducible).
//!
//! Not a cryptographic RNG, and `gen_range` uses multiply-shift range
//! reduction (Lemire) rather than rejection sampling: minuscule bias,
//! irrelevant for synthetic-workload generation.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Samples a bool with probability 1/2.
    fn gen_bool_fair(&mut self) -> bool
    where
        Self: Sized,
    {
        self.next_u64() & 1 == 1
    }
}

impl<T: RngCore> Rng for T {}

/// Integer types `gen_range` can sample (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Widens to a common signed domain for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrows back from the common domain (the value is known to fit).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled from (subset of
/// `rand::distributions::uniform::SampleRange`). The blanket impls over
/// `T: SampleUniform` mirror the real crate's shape so untyped integer
/// literals unify with the surrounding expression's type.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Lemire multiply-shift reduction of a random word onto `[0, span)`.
#[inline]
fn reduce(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        let off = reduce(rng.next_u64(), (hi - lo) as u64);
        T::from_i128(lo + off as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return T::from_i128(lo + rng.next_u64() as i128);
        }
        let off = reduce(rng.next_u64(), span + 1);
        T::from_i128(lo + off as i128)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 stream to fill the state, per the xoshiro
            // authors' recommendation; guarantees a nonzero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            seen_lo |= w == 0;
            seen_hi |= w == 4;
            assert!(w <= 4);
            let n: i16 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&n));
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never sampled");
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((800..1200).contains(&b), "bucket {i} count {b}");
        }
    }
}
