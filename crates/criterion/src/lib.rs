//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this workspace
//! vendors the subset of the Criterion API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It is a real (if simple) benchmark runner: each bench is warmed up,
//! then timed over enough iterations to fill a short measurement
//! window, and the mean wall-clock time per iteration — plus element
//! throughput when declared — is printed in a Criterion-like format.
//! There is no statistical analysis, HTML report, or saved baseline;
//! the numbers are honest but the machinery is intentionally minimal.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration measurement target. Kept short so `cargo bench` on the
/// full suite stays interactive; raise via `DISE_BENCH_MEASURE_MS`.
fn measurement_window() -> Duration {
    let ms = std::env::var("DISE_BENCH_MEASURE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Declared throughput of one iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The stand-in times
/// each routine invocation individually, so the hint is accepted but
/// does not change behavior.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Mirrors Criterion's CLI handling; the stand-in ignores argv
    /// (cargo passes `--bench`).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, None, f);
        self
    }
}

/// A group of benchmarks sharing throughput/reporting settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sample-count hint; accepted for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_bench(&label, self.throughput, f);
        self
    }

    /// Ends the group (report flushing in real Criterion; a no-op here).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; collects timed iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the measurement window.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + calibration: one untimed call.
        black_box(routine());
        let window = measurement_window();
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < window {
            black_box(routine());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let window = measurement_window();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < window {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = total;
    }
}

fn run_bench<F>(label: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<40} (no measurement)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3} Melem/s", n as f64 / per_iter / 1e6),
        Throughput::Bytes(n) => format!(", {:.3} MiB/s", n as f64 / per_iter / (1 << 20) as f64),
    });
    println!(
        "{label:<40} {:>12}/iter ({} iters){}",
        format_time(per_iter),
        b.iters,
        rate.unwrap_or_default()
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Groups benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runner_smoke() {
        std::env::set_var("DISE_BENCH_MEASURE_MS", "5");
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(10);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(calls > 0);
    }
}
