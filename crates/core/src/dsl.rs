//! The textual production language.
//!
//! DISE exposes its programming interface through productions written in a
//! directive-annotated version of the native ISA (paper §2.3). This module
//! parses the notation the paper's figures use:
//!
//! ```text
//! ; Memory fault isolation (Figure 1).
//! P1: T.OPCLASS == store -> R1
//! P2: T.OPCLASS == load  -> R1
//! R1: srl T.RS, #26, $dr1
//!     cmpeq $dr1, $dr2, $dr1
//!     beq $dr1, =error
//!     T.INSN
//! ```
//!
//! Pattern conditions (conjoined with `&&`): `T.OP == <mnemonic>`,
//! `T.OPCLASS == <class>`, `T.RS == <reg>`, `T.RT == <reg>`,
//! `T.RD == <reg>`, `T.IMM == <n>`, `T.IMM < 0`, `T.IMM >= 0`.
//!
//! A pattern's target is a replacement sequence name (`-> R1`) or the
//! keyword `TAG` for aware productions (the trigger's explicit tag selects
//! the sequence; the pattern must then name a reserved codeword opcode).
//!
//! Replacement operands may be directives: registers accept `T.RS`, `T.RT`,
//! `T.RD` and `T.P1`–`T.P3`; immediates accept `#<n>`, `#T.IMM`, `#T.PC`,
//! `#T.P<k>[.s][<<n]`, `#T.P<hi>:<lo>[.s][<<n]` and `=<symbol>` (an
//! absolute target resolved against the caller's symbol table — typically
//! an error handler). A line consisting of `T.INSN` re-emits the trigger.
//! DISE-internal branches use the `.d` mnemonic suffix with an `@<index>`
//! target, exactly as in the disassembler.

use crate::pattern::{ImmPredicate, Pattern};
use crate::production::ProductionSet;
use crate::spec::{ImmDirective, InstSpec, OpDirective, RegDirective, ReplacementSpec};
use crate::{CoreError, Result};
use dise_isa::op::Format;
use dise_isa::{Op, OpClass, Reg};
use std::collections::BTreeMap;

fn err(msg: impl Into<String>) -> CoreError {
    CoreError::Dsl(msg.into())
}

fn clean(line: &str) -> Option<&str> {
    let line = line.split(';').next().unwrap_or("");
    let line = line.split("//").next().unwrap_or("");
    let line = line.trim();
    (!line.is_empty()).then_some(line)
}

fn parse_opclass(s: &str) -> Result<OpClass> {
    OpClass::ALL
        .into_iter()
        .find(|c| c.to_string() == s)
        .ok_or_else(|| err(format!("unknown opcode class `{s}`")))
}

fn parse_reg(s: &str) -> Result<Reg> {
    s.parse().map_err(|e| err(format!("{e}")))
}

fn parse_pattern(text: &str) -> Result<Pattern> {
    let mut p = Pattern::default();
    for cond in text.split("&&").map(str::trim) {
        if let Some(rest) = cond.strip_prefix("T.OPCLASS") {
            let v = rest.trim().strip_prefix("==").ok_or_else(|| err(cond))?.trim();
            p.class = Some(parse_opclass(v)?);
        } else if let Some(rest) = cond.strip_prefix("T.OP") {
            let v = rest.trim().strip_prefix("==").ok_or_else(|| err(cond))?.trim();
            p.op = Some(Op::from_mnemonic(v).ok_or_else(|| err(format!("unknown op `{v}`")))?);
        } else if let Some(rest) = cond.strip_prefix("T.RS") {
            let v = rest.trim().strip_prefix("==").ok_or_else(|| err(cond))?.trim();
            p.rs = Some(parse_reg(v)?);
        } else if let Some(rest) = cond.strip_prefix("T.RT") {
            let v = rest.trim().strip_prefix("==").ok_or_else(|| err(cond))?.trim();
            p.rt = Some(parse_reg(v)?);
        } else if let Some(rest) = cond.strip_prefix("T.RD") {
            let v = rest.trim().strip_prefix("==").ok_or_else(|| err(cond))?.trim();
            p.rd = Some(parse_reg(v)?);
        } else if let Some(rest) = cond.strip_prefix("T.IMM") {
            let rest = rest.trim();
            p.imm = Some(if let Some(v) = rest.strip_prefix("==") {
                ImmPredicate::Eq(
                    v.trim()
                        .parse()
                        .map_err(|_| err(format!("bad immediate in `{cond}`")))?,
                )
            } else if rest.starts_with("<") && rest.trim_start_matches('<').trim() == "0" {
                ImmPredicate::Negative
            } else if rest.starts_with(">=") && rest.trim_start_matches(">=").trim() == "0" {
                ImmPredicate::NonNegative
            } else {
                return Err(err(format!("unsupported immediate condition `{cond}`")));
            });
        } else {
            return Err(err(format!("unknown pattern condition `{cond}`")));
        }
    }
    Ok(p)
}

/// Parses a `T.P…` parameter immediate: `T.P2`, `T.P2.s`, `T.P2<<3`,
/// `T.P3:2.s<<2`.
fn parse_param_imm(s: &str) -> Result<ImmDirective> {
    let body = s.strip_prefix("T.P").ok_or_else(|| err(s))?;
    let (body, shift) = match body.split_once("<<") {
        Some((b, sh)) => (
            b,
            sh.parse::<u8>()
                .map_err(|_| err(format!("bad shift in `{s}`")))?,
        ),
        None => (body, 0),
    };
    let (body, signed) = match body.strip_suffix(".s") {
        Some(b) => (b, true),
        None => (body, false),
    };
    let slot = |t: &str| -> Result<u8> {
        match t.parse::<u8>() {
            Ok(n @ 1..=3) => Ok(n - 1),
            _ => Err(err(format!("bad parameter slot in `{s}`"))),
        }
    };
    if let Some((hi, lo)) = body.split_once(':') {
        Ok(ImmDirective::Param2 {
            hi: slot(hi)?,
            lo: slot(lo)?,
            shift,
            signed,
        })
    } else {
        Ok(ImmDirective::Param {
            slot: slot(body)?,
            shift,
            signed,
        })
    }
}

fn parse_reg_directive(s: &str) -> Result<RegDirective> {
    Ok(match s {
        "T.RS" => RegDirective::TriggerRs,
        "T.RT" => RegDirective::TriggerRt,
        "T.RD" => RegDirective::TriggerRd,
        "T.P1" => RegDirective::Param(0),
        "T.P2" => RegDirective::Param(1),
        "T.P3" => RegDirective::Param(2),
        _ => RegDirective::Literal(parse_reg(s)?),
    })
}

fn parse_imm_directive(s: &str, symbols: &BTreeMap<String, u64>) -> Result<ImmDirective> {
    if let Some(sym) = s.strip_prefix('=') {
        let addr = symbols
            .get(sym)
            .ok_or_else(|| err(format!("unknown symbol `{sym}`")))?;
        return Ok(ImmDirective::AbsTarget(*addr));
    }
    let body = s.strip_prefix('#').unwrap_or(s);
    match body {
        "T.IMM" => Ok(ImmDirective::TriggerImm),
        "T.PC" => Ok(ImmDirective::TriggerPc),
        _ if body.starts_with("T.P") => parse_param_imm(body),
        _ => body
            .parse::<i64>()
            .map(ImmDirective::Literal)
            .map_err(|_| err(format!("bad immediate `{s}`"))),
    }
}

/// True if an operand token should be treated as an immediate in operate
/// format.
fn is_imm_token(s: &str) -> bool {
    s.starts_with('#') || s.starts_with('=')
}

/// Parses one replacement-instruction line.
fn parse_spec_line(line: &str, symbols: &BTreeMap<String, u64>) -> Result<InstSpec> {
    let line = line.trim();
    if line == "T.INSN" {
        return Ok(InstSpec::Trigger);
    }
    let (mnem, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let (mnem, dise) = match mnem.strip_suffix(".d") {
        Some(m) => (m, true),
        None => (mnem, false),
    };
    let op =
        Op::from_mnemonic(mnem).ok_or_else(|| err(format!("unknown mnemonic `{mnem}`")))?;
    if dise && op.format() != Format::Branch {
        return Err(err(format!("`.d` suffix only valid on branches: `{line}`")));
    }
    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let wrong = || err(format!("wrong operand count for `{line}`"));
    let zero = RegDirective::Literal(Reg::ZERO);
    let no_imm = ImmDirective::Literal(0);

    let spec = match op.format() {
        Format::Memory => {
            if ops.len() != 2 {
                return Err(wrong());
            }
            let ra = parse_reg_directive(ops[0])?;
            let (imm_s, rb_s) = ops[1]
                .strip_suffix(')')
                .and_then(|s| s.split_once('('))
                .ok_or_else(|| err(format!("expected `imm(reg)` in `{line}`")))?;
            InstSpec::Templated {
                op: OpDirective::Literal(op),
                ra,
                rb: parse_reg_directive(rb_s)?,
                rc: zero,
                imm: parse_imm_directive(imm_s, symbols)?,
                uses_lit: false,
                dise_branch: false,
            }
        }
        Format::Branch => {
            if ops.len() != 2 {
                return Err(wrong());
            }
            let ra = parse_reg_directive(ops[0])?;
            if dise {
                let target = ops[1]
                    .strip_prefix('@')
                    .and_then(|t| t.parse::<i64>().ok())
                    .ok_or_else(|| err(format!("DISE branch needs `@index` in `{line}`")))?;
                InstSpec::Templated {
                    op: OpDirective::Literal(op),
                    ra,
                    rb: zero,
                    rc: zero,
                    imm: ImmDirective::Literal(target),
                    uses_lit: false,
                    dise_branch: true,
                }
            } else {
                InstSpec::Templated {
                    op: OpDirective::Literal(op),
                    ra,
                    rb: zero,
                    rc: zero,
                    imm: parse_imm_directive(ops[1], symbols)?,
                    uses_lit: false,
                    dise_branch: false,
                }
            }
        }
        Format::Jump => {
            if ops.len() != 2 {
                return Err(wrong());
            }
            let rb_s = ops[1]
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| err(format!("expected `(reg)` in `{line}`")))?;
            InstSpec::Templated {
                op: OpDirective::Literal(op),
                ra: parse_reg_directive(ops[0])?,
                rb: parse_reg_directive(rb_s)?,
                rc: zero,
                imm: no_imm,
                uses_lit: false,
                dise_branch: false,
            }
        }
        Format::Operate => {
            if ops.len() != 3 {
                return Err(wrong());
            }
            let ra = parse_reg_directive(ops[0])?;
            let rc = parse_reg_directive(ops[2])?;
            if is_imm_token(ops[1]) {
                InstSpec::Templated {
                    op: OpDirective::Literal(op),
                    ra,
                    rb: zero,
                    rc,
                    imm: parse_imm_directive(ops[1], symbols)?,
                    uses_lit: true,
                    dise_branch: false,
                }
            } else {
                InstSpec::Templated {
                    op: OpDirective::Literal(op),
                    ra,
                    rb: parse_reg_directive(ops[1])?,
                    rc,
                    imm: no_imm,
                    uses_lit: false,
                    dise_branch: false,
                }
            }
        }
        Format::Codeword => {
            return Err(err(format!(
                "codewords cannot appear in replacement sequences (no recursive expansion): `{line}`"
            )))
        }
        Format::Misc => {
            if !ops.is_empty() {
                return Err(wrong());
            }
            InstSpec::Templated {
                op: OpDirective::Literal(op),
                ra: zero,
                rb: zero,
                rc: zero,
                imm: no_imm,
                uses_lit: false,
                dise_branch: false,
            }
        }
    };
    Ok(spec)
}

/// Parses a bare replacement sequence (instruction lines only, no `P:`/`R:`
/// headers). Symbols default to empty.
///
/// # Errors
///
/// Returns [`CoreError::Dsl`] on malformed lines, or a validation error for
/// structurally invalid sequences.
pub fn parse_sequence(text: &str) -> Result<ReplacementSpec> {
    parse_sequence_with(text, &BTreeMap::new())
}

/// [`parse_sequence`] with a symbol table for `=symbol` absolute targets.
///
/// # Errors
///
/// See [`parse_sequence`].
pub fn parse_sequence_with(
    text: &str,
    symbols: &BTreeMap<String, u64>,
) -> Result<ReplacementSpec> {
    let mut insts = Vec::new();
    for raw in text.lines() {
        let Some(line) = clean(raw) else { continue };
        insts.push(parse_spec_line(line, symbols)?);
    }
    let spec = ReplacementSpec::new(insts);
    spec.validate()?;
    Ok(spec)
}

/// Parses a full production listing (see the module docs for the grammar)
/// into a [`ProductionSet`]. `symbols` resolves `=symbol` operands.
///
/// # Errors
///
/// Returns [`CoreError::Dsl`] on malformed input, including patterns whose
/// `TAG` target is not a reserved codeword opcode and references to
/// undefined sequence names.
pub fn parse(text: &str, symbols: &BTreeMap<String, u64>) -> Result<ProductionSet> {
    // Pass 1: split into P-rules and R-sections.
    struct RawRule {
        pattern: String,
        target: String,
    }
    let mut rules: Vec<RawRule> = Vec::new();
    let mut seqs: Vec<(String, Vec<String>)> = Vec::new();
    let mut current_seq: Option<usize> = None;
    for raw in text.lines() {
        let Some(line) = clean(raw) else { continue };
        // Header? `Pname: ...` or `Rname: ...`
        let header = line.split_once(':').and_then(|(h, rest)| {
            let h = h.trim();
            let valid = (h.starts_with('P') || h.starts_with('R'))
                && h.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && h.len() >= 2;
            valid.then(|| (h.to_string(), rest.trim().to_string()))
        });
        match header {
            Some((name, rest)) if name.starts_with('P') => {
                current_seq = None;
                let (pattern, target) = rest
                    .split_once("->")
                    .ok_or_else(|| err(format!("pattern `{name}` missing `->`")))?;
                rules.push(RawRule {
                    pattern: pattern.trim().to_string(),
                    target: target.trim().to_string(),
                });
            }
            Some((name, rest)) => {
                seqs.push((name, Vec::new()));
                current_seq = Some(seqs.len() - 1);
                if !rest.is_empty() {
                    seqs.last_mut().unwrap().1.push(rest);
                }
            }
            None => match current_seq {
                Some(i) => seqs[i].1.push(line.to_string()),
                None => return Err(err(format!("instruction line outside a sequence: `{line}`"))),
            },
        }
    }

    // Pass 2: build the set.
    let mut set = ProductionSet::new();
    let mut installed: BTreeMap<String, crate::production::ReplacementId> = BTreeMap::new();
    let mut used: Vec<&str> = Vec::new();
    for rule in &rules {
        let pattern = parse_pattern(&rule.pattern)?;
        if rule.target == "TAG" {
            let op = pattern
                .op
                .filter(|o| o.is_codeword())
                .ok_or_else(|| err("TAG target requires a reserved codeword opcode pattern"))?;
            set.add_aware_rule(op);
            continue;
        }
        used.push(&rule.target);
        if let Some(id) = installed.get(&rule.target) {
            set.add_pattern(pattern, *id)?;
            continue;
        }
        let (_, lines) = seqs
            .iter()
            .find(|(n, _)| *n == rule.target)
            .ok_or_else(|| err(format!("undefined sequence `{}`", rule.target)))?;
        let spec = parse_sequence_with(&lines.join("\n"), symbols)?;
        let id = set.add_transparent(pattern, spec)?;
        installed.insert(rule.target.clone(), id);
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::Inst;

    fn syms() -> BTreeMap<String, u64> {
        [("error".to_string(), 0x7000u64)].into_iter().collect()
    }

    #[test]
    fn figure_1_parses_and_expands() {
        let set = parse(
            "; Memory fault isolation
             P1: T.OPCLASS == store -> R1
             P2: T.OPCLASS == load  -> R1
             R1: srl T.RS, #26, $dr1
                 cmpeq $dr1, $dr2, $dr1
                 beq $dr1, =error
                 T.INSN",
            &syms(),
        )
        .unwrap();
        assert_eq!(set.num_rules(), 2);
        assert_eq!(set.num_seqs(), 1, "both patterns share R1");
        let st: Inst = "stq r0, 0(r2)".parse().unwrap();
        let ld: Inst = "ldq r0, 0(r2)".parse().unwrap();
        assert_eq!(set.lookup(&st), set.lookup(&ld));
        let spec = set.seq(set.lookup(&st).unwrap()).unwrap();
        let out = spec.instantiate_all(&st, 0x1000).unwrap();
        assert_eq!(out[0].to_string(), "srl r2, #26, $dr1");
        assert_eq!(out[2].imm, 0x7000 - 0x1004);
    }

    #[test]
    fn pattern_conditions() {
        let set = parse(
            "P1: T.OPCLASS == load && T.RS == r30 -> R1
             P2: T.OP == bne && T.IMM < 0 -> R1
             P3: T.IMM >= 0 && T.OPCLASS == cbranch -> R1
             P4: T.RT == r5 && T.OPCLASS == store -> R1
             P5: T.RD == r1 && T.OP == addq -> R1
             R1: T.INSN",
            &BTreeMap::new(),
        )
        .unwrap();
        let hit: Inst = "ldq r1, 8(r30)".parse().unwrap();
        assert!(set.lookup(&hit).is_some());
        let miss: Inst = "ldq r1, 8(r2)".parse().unwrap();
        assert!(set.lookup(&miss).is_none());
        assert!(set.lookup(&"bne r1, -4".parse().unwrap()).is_some());
        assert!(set.lookup(&"beq r1, 4".parse().unwrap()).is_some());
        assert!(set.lookup(&"stq r5, 0(r2)".parse().unwrap()).is_some());
        assert!(set.lookup(&"addq r2, r3, r1".parse().unwrap()).is_some());
        assert!(set.lookup(&"addq r2, r3, r4".parse().unwrap()).is_none());
    }

    #[test]
    fn aware_tag_rules() {
        let set = parse("P1: T.OP == cw0 -> TAG", &BTreeMap::new()).unwrap();
        assert_eq!(set.num_rules(), 1);
        // Non-codeword TAG target is rejected.
        assert!(parse("P1: T.OP == ldq -> TAG", &BTreeMap::new()).is_err());
    }

    #[test]
    fn directive_rich_sequences() {
        let spec = parse_sequence(
            "lda T.P1, #T.P2.s(T.P1)
             addq T.RS, #T.P1, $dr3
             bis T.RS, T.RT, $dr4
             stq T.RD, T.IMM($dr5)
             lda $dr6, #T.PC(r31)
             br r31, #T.P3:2.s<<2
             bne.d $dr1, @0",
        )
        .unwrap();
        assert_eq!(spec.len(), 7);
        assert!(spec.insts[0].is_parameterized());
        // The DISE branch parsed with a literal in-range target.
        spec.validate().unwrap();
    }

    #[test]
    fn parse_errors() {
        let e = |t: &str| parse(t, &BTreeMap::new());
        assert!(e("P1: T.BOGUS == 3 -> R1\nR1: nop").is_err());
        assert!(e("P1: T.OPCLASS == store -> R9").is_err()); // undefined seq
        assert!(e("nop").is_err()); // instruction outside a sequence
        assert!(e("P1: T.OPCLASS == store R1\nR1: nop").is_err()); // missing ->
        assert!(parse_sequence("cw0 r1, r2, r3, tag=5").is_err()); // no recursion
        assert!(parse_sequence("bne.d r1, 5").is_err()); // needs @
        assert!(parse_sequence("").is_err()); // empty sequence invalid
    }

    #[test]
    fn unknown_symbols_are_errors() {
        assert!(parse_sequence("beq $dr1, =nowhere").is_err());
    }

    #[test]
    fn round_trip_via_display() {
        // The ProductionSet Display output parses back (for the shapes the
        // DSL supports).
        let set = parse(
            "P1: T.OPCLASS == store -> R1
             R1: srl T.RS, #26, $dr1
                 T.INSN",
            &BTreeMap::new(),
        )
        .unwrap();
        let text = set.to_string();
        assert!(text.contains("srl T.RS, #26, $dr1"));
    }
}
