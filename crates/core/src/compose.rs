//! ACF composition (paper §3.3).
//!
//! DISE composes ACFs in software, by manipulating productions:
//!
//! * **Nested composition** `Y(X(application))` — [`compose_nested`] keeps
//!   Y's productions and adds X's productions with Y *inlined* into their
//!   replacement sequences: every entry of an X sequence that Y would match
//!   is replaced by Y's sequence for it, with Y's trigger-field directives
//!   substituted by the entry's own directives and Y's dedicated registers
//!   renamed if they collide with X's. Because X's rules must shadow Y's
//!   when both match a fetched instruction (X conceptually runs first),
//!   the inlined rules are installed at higher match priority.
//! * **Non-nested merging** — [`merge_specs`] concatenates two replacement
//!   sequences for overlapping patterns around a single shared trigger
//!   (Figure 5 right: trace *and* fault-isolate application stores, without
//!   fault-isolating the tracing stores).
//!
//! Matching during inlining is *static*: an outer pattern must be provably
//! matched or provably not matched by each inner entry (given the inner
//! rule's own pattern as a hint for `T.INSN` entries). A statically
//! undecidable match is a composition error — the same restriction the
//! paper imposes by construction.

use crate::pattern::Pattern;
use crate::production::{ProductionSet, SeqRef};
use crate::spec::{ImmDirective, InstSpec, OpDirective, RegDirective, ReplacementSpec};
use crate::{CoreError, Result};
use dise_isa::op::Format;
use dise_isa::{Op, Reg};
use std::collections::BTreeMap;

/// Three-valued static match result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tri {
    Yes,
    No,
    Unknown,
}

/// Register-role directives of a templated spec with a literal opcode, or
/// `None` when the role does not exist for that opcode.
fn role_directives(
    op: Op,
    ra: RegDirective,
    rb: RegDirective,
    uses_lit: bool,
    rc: RegDirective,
) -> [Option<RegDirective>; 3] {
    use dise_isa::OpClass;
    // [rs, rt, rd], mirroring `Inst::rs/rt/rd`.
    match op.format() {
        Format::Memory => match op.class() {
            OpClass::Store => [Some(rb), Some(ra), None],
            _ => [Some(rb), None, Some(ra)],
        },
        Format::Branch => match op.class() {
            OpClass::UncondBranch => [Some(ra), None, Some(ra)],
            _ => [Some(ra), None, None],
        },
        Format::Jump => [Some(rb), None, Some(ra)],
        Format::Operate => [
            Some(ra),
            if uses_lit { None } else { Some(rb) },
            Some(rc),
        ],
        Format::Codeword | Format::Misc => [None, None, None],
    }
}

/// Statically evaluates `pattern` against an inner spec entry. `hint` is
/// the inner production's own pattern, used to decide `T.INSN` entries.
fn match_entry(pattern: &Pattern, entry: &InstSpec, hint: Option<&Pattern>) -> Tri {
    match entry {
        InstSpec::Trigger => match hint {
            Some(h) if h.implies(pattern) => Tri::Yes,
            Some(h) if h.disjoint(pattern) => Tri::No,
            _ => Tri::Unknown,
        },
        InstSpec::Templated {
            op,
            ra,
            rb,
            rc,
            imm,
            uses_lit,
            ..
        } => {
            let OpDirective::Literal(op) = op else {
                // `T.OP` templated opcode: fall back to the hint.
                return match hint {
                    Some(h) if h.implies(pattern) => Tri::Yes,
                    Some(h) if h.disjoint(pattern) => Tri::No,
                    _ => Tri::Unknown,
                };
            };
            let mut saw_no = false;
            let mut saw_unknown = false;
            let mut check = |t: Tri| match t {
                Tri::No => saw_no = true,
                Tri::Unknown => saw_unknown = true,
                Tri::Yes => {}
            };
            if let Some(p_op) = pattern.op {
                check(if *op == p_op { Tri::Yes } else { Tri::No });
            }
            if let Some(p_class) = pattern.class {
                check(if op.class() == p_class { Tri::Yes } else { Tri::No });
            }
            let roles = role_directives(*op, *ra, *rb, *uses_lit, *rc);
            for (want, have) in [pattern.rs, pattern.rt, pattern.rd].iter().zip(roles) {
                if let Some(want) = want {
                    check(match have {
                        None => Tri::No, // role absent → constraint can't hold
                        Some(RegDirective::Literal(r)) => {
                            if r == *want {
                                Tri::Yes
                            } else {
                                Tri::No
                            }
                        }
                        Some(_) => Tri::Unknown,
                    });
                }
            }
            if let Some(p_imm) = pattern.imm {
                check(match imm {
                    ImmDirective::Literal(v) => {
                        if p_imm.matches(*v) {
                            Tri::Yes
                        } else {
                            Tri::No
                        }
                    }
                    _ => Tri::Unknown,
                });
            }
            if saw_no {
                Tri::No
            } else if saw_unknown {
                Tri::Unknown
            } else {
                Tri::Yes
            }
        }
    }
}

/// Substitutes the outer spec's trigger-referencing directives with the
/// inner entry's own directives, producing the splice for one expanded
/// entry. `base` is the splice's starting index in the composed sequence
/// (for shifting the outer spec's internal DISE-branch targets).
fn substitute(
    outer: &ReplacementSpec,
    inner_entry: &InstSpec,
    base: usize,
) -> Result<Vec<InstSpec>> {
    // Extract the inner entry's field directives by role.
    let inner_roles: [Option<RegDirective>; 3];
    let inner_imm: Option<ImmDirective>;
    match inner_entry {
        InstSpec::Trigger => {
            // Outer trigger directives pass through unchanged: the eventual
            // trigger of the composed sequence *is* the inner trigger.
            inner_roles = [
                Some(RegDirective::TriggerRs),
                Some(RegDirective::TriggerRt),
                Some(RegDirective::TriggerRd),
            ];
            inner_imm = Some(ImmDirective::TriggerImm);
        }
        InstSpec::Templated {
            op,
            ra,
            rb,
            rc,
            imm,
            uses_lit,
            ..
        } => {
            let OpDirective::Literal(op) = op else {
                return Err(CoreError::Compose(
                    "cannot inline into an entry with a templated opcode".into(),
                ));
            };
            inner_roles = role_directives(*op, *ra, *rb, *uses_lit, *rc);
            inner_imm = Some(*imm);
        }
    }
    let map_reg = |d: RegDirective| -> Result<RegDirective> {
        Ok(match d {
            RegDirective::TriggerRs => inner_roles[0].ok_or_else(|| {
                CoreError::Compose("outer T.RS but inner entry has no RS role".into())
            })?,
            RegDirective::TriggerRt => inner_roles[1].ok_or_else(|| {
                CoreError::Compose("outer T.RT but inner entry has no RT role".into())
            })?,
            RegDirective::TriggerRd => inner_roles[2].ok_or_else(|| {
                CoreError::Compose("outer T.RD but inner entry has no RD role".into())
            })?,
            other => other,
        })
    };
    let map_imm = |d: ImmDirective| -> Result<ImmDirective> {
        Ok(match d {
            ImmDirective::TriggerImm => inner_imm.ok_or_else(|| {
                CoreError::Compose("outer T.IMM but inner entry has no immediate".into())
            })?,
            other => other,
        })
    };
    let mut out = Vec::with_capacity(outer.len());
    for spec in &outer.insts {
        out.push(match spec {
            InstSpec::Trigger => inner_entry.clone(),
            InstSpec::Templated {
                op,
                ra,
                rb,
                rc,
                imm,
                uses_lit,
                dise_branch,
            } => {
                let imm = if *dise_branch {
                    // Shift the outer DISE branch target into the composed
                    // sequence's index space.
                    match imm {
                        ImmDirective::Literal(t) => ImmDirective::Literal(t + base as i64),
                        _ => {
                            return Err(CoreError::Compose(
                                "DISE branch with non-literal target".into(),
                            ))
                        }
                    }
                } else {
                    map_imm(*imm)?
                };
                InstSpec::Templated {
                    op: *op,
                    ra: map_reg(*ra)?,
                    rb: map_reg(*rb)?,
                    rc: map_reg(*rc)?,
                    imm,
                    uses_lit: *uses_lit,
                    dise_branch: *dise_branch,
                }
            }
        });
    }
    Ok(out)
}

/// Builds a consistent dedicated-register renaming for the outer ACF so its
/// registers never collide with the inner ACF's. Renaming is applied
/// uniformly across every splice, preserving the outer ACF's cross-expansion
/// register communication. Note the paper's convention (Figure 5) is for
/// composed ACFs to simply use disjoint dedicated registers; renaming only
/// kicks in when they do not.
fn rename_map(outer_regs: &[Reg], inner_regs: &[Reg]) -> Result<BTreeMap<Reg, Reg>> {
    let mut map = BTreeMap::new();
    let used: Vec<Reg> = outer_regs.iter().chain(inner_regs).copied().collect();
    let mut free = (0..dise_isa::reg::NUM_DEDICATED_REGS as u8)
        .map(Reg::dr)
        .filter(|r| !used.contains(r));
    for r in outer_regs {
        if inner_regs.contains(r) {
            let target = free.next().ok_or_else(|| {
                CoreError::Compose("no free dedicated registers for renaming".into())
            })?;
            map.insert(*r, target);
        }
    }
    Ok(map)
}

/// Inlines a transparent production set into one replacement sequence.
/// This is what the RT miss handler runs for compose-on-miss
/// configurations (§4.3); [`compose_nested`] uses it eagerly.
///
/// `hint`, when given, is the inner production's own pattern and is used to
/// decide whether outer rules apply to `T.INSN` entries.
///
/// # Errors
///
/// Fails if an outer pattern's applicability to some entry is statically
/// undecidable, if the matched outer rule is aware, or if dedicated-register
/// renaming runs out of registers.
pub fn inline_hinted(
    outer: &ProductionSet,
    spec: &ReplacementSpec,
    hint: Option<&Pattern>,
) -> Result<ReplacementSpec> {
    // Consistent renaming for this (outer, inner-sequence) pair.
    let outer_regs: Vec<Reg> = {
        let mut v: Vec<Reg> = outer
            .seqs()
            .flat_map(|(_, s)| s.dedicated_regs())
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let inner_regs = spec.dedicated_regs();
    let renames = rename_map(&outer_regs, &inner_regs)?;

    // Pass 1: expand entries, recording the index map.
    let mut index_map = Vec::with_capacity(spec.len());
    let mut expanded: Vec<Vec<InstSpec>> = Vec::with_capacity(spec.len());
    let mut next_index = 0usize;
    for entry in &spec.insts {
        index_map.push(next_index);
        // Find the best provably-matching outer rule; reject if an
        // undecidable rule could outrank it.
        let mut best_yes: Option<(u8, u32, usize)> = None; // (prio, spec, idx)
        let mut best_unknown: Option<(u8, u32)> = None;
        for (i, rule) in outer.rules().iter().enumerate() {
            let key = (rule.priority, rule.pattern.specificity());
            match match_entry(&rule.pattern, entry, hint) {
                Tri::Yes => {
                    if best_yes.map(|(p, s, _)| (p, s) < key).unwrap_or(true) {
                        best_yes = Some((key.0, key.1, i));
                    }
                }
                Tri::Unknown => {
                    if best_unknown.map(|b| b < key).unwrap_or(true) {
                        best_unknown = Some(key);
                    }
                }
                Tri::No => {}
            }
        }
        if let Some(unk) = best_unknown {
            let beats_yes = best_yes.map(|(p, s, _)| unk >= (p, s)).unwrap_or(true);
            if beats_yes {
                return Err(CoreError::Compose(format!(
                    "outer pattern applicability to `{entry}` is statically undecidable"
                )));
            }
        }
        let splice = match best_yes {
            None => vec![entry.clone()],
            Some((_, _, rule_idx)) => {
                let rule = &outer.rules()[rule_idx];
                let id = match rule.seq {
                    SeqRef::Fixed(id) => id,
                    SeqRef::FromTag { .. } => {
                        return Err(CoreError::Compose(
                            "cannot inline an aware outer production".into(),
                        ))
                    }
                };
                let mut outer_spec = outer
                    .seq(id)
                    .ok_or(CoreError::UnknownSequence(id))?
                    .clone();
                if !renames.is_empty() {
                    // Rename the outer ACF's registers *before* splicing so
                    // the inner entry (inserted at T.INSN) keeps its own.
                    for s in &mut outer_spec.insts {
                        s.rename_dedicated(&mut |r| *renames.get(&r).unwrap_or(&r));
                    }
                }
                substitute(&outer_spec, entry, next_index)?
            }
        };
        next_index += splice.len();
        expanded.push(splice);
    }

    // Pass 2: rewrite the *inner* sequence's own DISE-branch targets
    // through the index map. (Entries spliced from the outer spec had their
    // targets shifted during substitution; kept inner entries are exactly
    // the 1:1 splices.)
    for (old_idx, splice) in expanded.iter_mut().enumerate() {
        if splice.len() == 1 && spec.insts[old_idx] == splice[0] {
            if let InstSpec::Templated {
                dise_branch: true,
                imm: ImmDirective::Literal(t),
                ..
            } = &mut splice[0]
            {
                let old_target = *t as usize;
                *t = *index_map.get(old_target).ok_or_else(|| {
                    CoreError::Compose("inner DISE branch target out of range".into())
                })? as i64;
            }
        }
    }

    let composed = ReplacementSpec::new(expanded.into_iter().flatten().collect());
    composed.validate()?;
    Ok(composed)
}

/// [`inline_hinted`] without a trigger-pattern hint (used when the inner
/// sequence is aware: its entries recreate original code and contain no
/// `T.INSN`).
pub fn inline(outer: &ProductionSet, spec: &ReplacementSpec) -> Result<ReplacementSpec> {
    inline_hinted(outer, spec, None)
}

/// Nested composition: productions implementing `outer(inner(application))`
/// (§3.3). The result holds the outer rules plus, at higher priority, the
/// inner rules with the outer ACF inlined into their replacement sequences.
///
/// # Errors
///
/// Propagates inlining failures; also fails on aware-tag collisions between
/// the two sets.
pub fn compose_nested(
    outer: &ProductionSet,
    inner: &ProductionSet,
) -> Result<ProductionSet> {
    let mut result = outer.clone();
    let prio = outer.max_priority().saturating_add(1);
    for rule in inner.rules() {
        match rule.seq {
            SeqRef::Fixed(id) => {
                let spec = inner.seq(id).ok_or(CoreError::UnknownSequence(id))?;
                let composed = inline_hinted(outer, spec, Some(&rule.pattern))?;
                result.add_transparent_prioritized(rule.pattern, composed, prio)?;
            }
            SeqRef::FromTag { base } => {
                let cw_op = rule.pattern.op.ok_or_else(|| {
                    CoreError::Compose("aware rule without an opcode pattern".into())
                })?;
                for (id, spec) in inner.seqs().filter(|(id, _)| {
                    *id >= base && *id <= base + dise_isa::inst::MAX_TAG as u32
                }) {
                    let tag = (id - base) as u16;
                    let composed = inline_hinted(outer, spec, Some(&rule.pattern))?;
                    if result.seq(id).is_some() {
                        return Err(CoreError::Compose(format!(
                            "aware tag collision on ({cw_op}, {tag})"
                        )));
                    }
                    result.add_aware(cw_op, tag, composed)?;
                }
                result.set_codeword_priority(cw_op, prio);
            }
        }
    }
    Ok(result)
}

/// Non-nested merge of two replacement sequences sharing a pattern: the
/// pre-trigger parts of both, one shared trigger, then the post-trigger
/// parts (Figure 5 right). Each input must contain exactly one `T.INSN`.
/// DISE-branch targets are re-indexed; `b`'s dedicated registers are
/// renamed if they collide with `a`'s.
///
/// # Errors
///
/// Fails if either sequence does not contain exactly one trigger or
/// renaming runs out of registers.
pub fn merge_specs(a: &ReplacementSpec, b: &ReplacementSpec) -> Result<ReplacementSpec> {
    let trig = |s: &ReplacementSpec| -> Result<usize> {
        let idxs: Vec<usize> = s
            .insts
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, InstSpec::Trigger))
            .map(|(i, _)| i)
            .collect();
        match idxs.as_slice() {
            [one] => Ok(*one),
            _ => Err(CoreError::Compose(
                "non-nested merge requires exactly one T.INSN per sequence".into(),
            )),
        }
    };
    let ta = trig(a)?;
    let tb = trig(b)?;
    let b_post = b.len() - tb - 1;

    // Rename b's colliding dedicated registers.
    let renames = rename_map(&b.dedicated_regs(), &a.dedicated_regs())?;
    let mut b = b.clone();
    if !renames.is_empty() {
        for s in &mut b.insts {
            s.rename_dedicated(&mut |r| *renames.get(&r).unwrap_or(&r));
        }
    }

    // Layout: A_pre | B_pre | T | B_post | A_post.
    let map_a = |i: usize| -> usize {
        use std::cmp::Ordering::*;
        match i.cmp(&ta) {
            Less => i,
            Equal => ta + tb,
            Greater => tb + b_post + i,
        }
    };
    let map_b = |i: usize| -> usize { ta + i };
    let fix = |entry: &InstSpec, map: &dyn Fn(usize) -> usize| -> Result<InstSpec> {
        let mut e = entry.clone();
        if let InstSpec::Templated {
            dise_branch: true,
            imm: ImmDirective::Literal(t),
            ..
        } = &mut e
        {
            *t = map(*t as usize) as i64;
        }
        Ok(e)
    };

    let mut out = Vec::with_capacity(a.len() + b.len() - 1);
    for e in &a.insts[..ta] {
        out.push(fix(e, &map_a)?);
    }
    for e in &b.insts[..tb] {
        out.push(fix(e, &map_b)?);
    }
    out.push(InstSpec::Trigger);
    for e in &b.insts[tb + 1..] {
        out.push(fix(e, &map_b)?);
    }
    for e in &a.insts[ta + 1..] {
        out.push(fix(e, &map_a)?);
    }
    let merged = ReplacementSpec::new(out);
    merged.validate()?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;
    use dise_isa::{Inst, OpClass};
    use std::collections::BTreeMap as Map;

    fn mfi() -> ProductionSet {
        dsl::parse(
            "P1: T.OPCLASS == store -> R1
             P2: T.OPCLASS == load  -> R1
             R1: srl T.RS, #26, $dr1
                 cmpeq $dr1, $dr2, $dr1
                 beq $dr1, =error
                 T.INSN",
            &[("error".to_string(), 0x7000)].into_iter().collect::<Map<_, _>>(),
        )
        .unwrap()
    }

    fn tracing() -> ProductionSet {
        // Figure 5: store-address tracing. Writes the store's effective
        // address (base+offset via lda) into a trace buffer pointed to by
        // $dr5.
        dsl::parse(
            "P3: T.OPCLASS == store -> R3
             R3: lda $dr4, T.IMM(T.RS)
                 stq $dr4, 0($dr5)
                 lda $dr5, 8($dr5)
                 T.INSN",
            &Map::new(),
        )
        .unwrap()
    }

    #[test]
    fn figure_5_nested_composition() {
        // Fault-isolate traced code: MFI(SAT(application)).
        let composed = compose_nested(&mfi(), &tracing()).unwrap();
        let store: Inst = "stq r9, 16(r2)".parse().unwrap();
        let id = composed.lookup(&store).unwrap();
        let spec = composed.seq(id).unwrap();
        // R3 has two stores (the tracing stq and T.INSN), each expanded by
        // MFI's 4-entry sequence: 1(lda) + 4 + 1(lda) + 4 = 10 entries.
        assert_eq!(spec.len(), 10);
        let insts = spec.instantiate_all(&store, 0x1000).unwrap();
        // First: the tracing lda computes the store address.
        assert_eq!(insts[0].to_string(), "lda $dr4, 16(r2)");
        // Then MFI checks the *tracing* store's address register ($dr5).
        assert_eq!(insts[1].to_string(), "srl $dr5, #26, $dr1");
        assert_eq!(insts[4].to_string(), "stq $dr4, 0($dr5)");
        // Finally MFI checks the original store's address register (r2).
        assert_eq!(insts[6].to_string(), "srl r2, #26, $dr1");
        assert_eq!(insts[9], store);
    }

    #[test]
    fn nested_composition_rule_precedence() {
        // Both ACFs match stores; the composed (inner) rule must win over
        // the plain outer rule.
        let composed = compose_nested(&mfi(), &tracing()).unwrap();
        let store: Inst = "stq r9, 16(r2)".parse().unwrap();
        let id = composed.lookup(&store).unwrap();
        assert_eq!(composed.seq(id).unwrap().len(), 10);
        // Loads only match MFI; they get the plain 4-entry sequence.
        let load: Inst = "ldq r9, 16(r2)".parse().unwrap();
        let lid = composed.lookup(&load).unwrap();
        assert_eq!(composed.seq(lid).unwrap().len(), 4);
    }

    #[test]
    fn figure_5_non_nested_merge() {
        // Trace and fault-isolate application stores, but do not
        // fault-isolate the tracing stores.
        let mfi = mfi();
        let sat = tracing();
        let r1 = mfi.seq(mfi.lookup(&"stq r1, 0(r2)".parse().unwrap()).unwrap()).unwrap();
        let r3 = sat.seq(sat.lookup(&"stq r1, 0(r2)".parse().unwrap()).unwrap()).unwrap();
        let r4 = merge_specs(r1, r3).unwrap();
        // pre(R1)=3 + pre(R3)=3 + T.INSN = 7.
        assert_eq!(r4.len(), 7);
        let store: Inst = "stq r9, 16(r2)".parse().unwrap();
        let insts = r4.instantiate_all(&store, 0x1000).unwrap();
        assert_eq!(insts[0].to_string(), "srl r2, #26, $dr1");
        assert_eq!(insts[3].to_string(), "lda $dr4, 16(r2)");
        assert_eq!(insts[4].to_string(), "stq $dr4, 0($dr5)");
        assert_eq!(insts[6], store);
    }

    #[test]
    fn inline_into_aware_sequence() {
        // Decompression-style aware sequence containing a load and an add.
        let mut aware = ProductionSet::new();
        let spec = dsl::parse_sequence(
            "ldq T.P1, 8(T.P2)
             addq T.P1, #1, T.P1",
        )
        .unwrap();
        aware.add_aware(Op::Cw0, 0, spec).unwrap();
        let composed = inline(&mfi(), aware.seq(aware.lookup(&Inst::codeword(Op::Cw0, 1, 2, 0, 0)).unwrap()).unwrap()).unwrap();
        // The load grows MFI's 3 check instructions; the add is untouched.
        assert_eq!(composed.len(), 5);
        let cw = Inst::codeword(Op::Cw0, 5, 6, 0, 0);
        let insts = composed.instantiate_all(&cw, 0x2000).unwrap();
        // The check operates on the load's (parameterized) address register.
        assert_eq!(insts[0].to_string(), "srl r6, #26, $dr1");
        assert_eq!(insts[3].to_string(), "ldq r5, 8(r6)");
        assert_eq!(insts[4].to_string(), "addq r5, #1, r5");
    }

    #[test]
    fn dedicated_register_conflicts_are_renamed() {
        // Inner uses $dr1, which MFI uses as scratch.
        let mut aware = ProductionSet::new();
        let spec = dsl::parse_sequence("stq $dr1, 0(T.P1)").unwrap();
        aware.add_aware(Op::Cw0, 0, spec.clone()).unwrap();
        let composed = inline(&mfi(), &spec).unwrap();
        let cw = Inst::codeword(Op::Cw0, 7, 0, 0, 0);
        let insts = composed.instantiate_all(&cw, 0).unwrap();
        // MFI's scratch register must have been renamed away from $dr1.
        assert_eq!(insts.len(), 4);
        let srl = insts[0];
        assert!(srl.rc.is_dedicated());
        assert_ne!(srl.rc, Reg::dr(1));
        // The store still stores $dr1.
        assert_eq!(insts[3].ra, Reg::dr(1));
    }

    #[test]
    fn undecidable_composition_is_an_error() {
        // Outer matches stores *through r2 specifically*; inner store's
        // address register is a codeword parameter — undecidable.
        let mut outer = ProductionSet::new();
        outer
            .add_transparent(
                Pattern::opclass(OpClass::Store).with_rs(Reg::R2),
                ReplacementSpec::identity(),
            )
            .unwrap();
        let spec = dsl::parse_sequence("stq r1, 0(T.P1)").unwrap();
        assert!(matches!(
            inline(&outer, &spec),
            Err(CoreError::Compose(_))
        ));
    }

    #[test]
    fn no_recursive_expansion() {
        // The spliced MFI check contains no stores, so inlining MFI into a
        // single-store sequence yields exactly one check, not an infinite
        // regress. (Guaranteed structurally: we never re-inspect splices.)
        let spec = dsl::parse_sequence("stq r1, 0(r2)").unwrap();
        let once = inline(&mfi(), &spec).unwrap();
        assert_eq!(once.len(), 4);
    }

    #[test]
    fn merge_requires_single_triggers() {
        let no_trigger = dsl::parse_sequence("nop").unwrap();
        let ok = ReplacementSpec::identity();
        assert!(merge_specs(&no_trigger, &ok).is_err());
        assert!(merge_specs(&ok, &no_trigger).is_err());
        assert_eq!(merge_specs(&ok, &ok).unwrap().len(), 1);
    }
}
