//! Pattern specifications.
//!
//! A pattern may constrain any combination of opcode, opcode class, the
//! trigger's register roles (`T.RS`/`T.RT`/`T.RD`), and its immediate field
//! or an attribute thereof (paper §2.1: *"loads that use the stack-pointer
//! as their address register"*, *"conditional branches with negative
//! offsets"*). When several patterns match a fetched instruction, the most
//! specific one wins (§2.2), which is what makes overlapping and negative
//! pattern specifications expressible.

use dise_isa::{Inst, Op, OpClass, Reg};
use std::fmt;

/// A predicate over the trigger's immediate field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImmPredicate {
    /// `T.IMM == v`
    Eq(i64),
    /// `T.IMM < 0`
    Negative,
    /// `T.IMM >= 0`
    NonNegative,
}

impl ImmPredicate {
    /// Evaluates the predicate.
    pub fn matches(&self, imm: i64) -> bool {
        match self {
            ImmPredicate::Eq(v) => imm == *v,
            ImmPredicate::Negative => imm < 0,
            ImmPredicate::NonNegative => imm >= 0,
        }
    }
}

impl fmt::Display for ImmPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImmPredicate::Eq(v) => write!(f, "T.IMM == {v}"),
            ImmPredicate::Negative => write!(f, "T.IMM < 0"),
            ImmPredicate::NonNegative => write!(f, "T.IMM >= 0"),
        }
    }
}

/// A pattern specification. All present constraints must hold for a fetched
/// instruction to trigger (conjunction).
///
/// ```
/// use dise_core::Pattern;
/// use dise_isa::{Inst, OpClass, Reg};
///
/// // "Loads that use the stack pointer as their address register."
/// let p = Pattern::opclass(OpClass::Load).with_rs(Reg::SP);
/// let hit: Inst = "ldq r1, 8(r30)".parse().unwrap();
/// let miss: Inst = "ldq r1, 8(r7)".parse().unwrap();
/// assert!(p.matches(&hit));
/// assert!(!p.matches(&miss));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pattern {
    /// Exact opcode constraint.
    pub op: Option<Op>,
    /// Opcode-class constraint.
    pub class: Option<OpClass>,
    /// Constraint on the trigger's `T.RS` role (primary source / address
    /// register).
    pub rs: Option<Reg>,
    /// Constraint on the trigger's `T.RT` role (secondary source / store
    /// data register).
    pub rt: Option<Reg>,
    /// Constraint on the trigger's `T.RD` role (destination).
    pub rd: Option<Reg>,
    /// Constraint on the trigger's immediate field.
    pub imm: Option<ImmPredicate>,
}

impl Pattern {
    /// A pattern constraining only the opcode class.
    pub fn opclass(class: OpClass) -> Pattern {
        Pattern {
            class: Some(class),
            ..Pattern::default()
        }
    }

    /// A pattern constraining only the exact opcode.
    pub fn opcode(op: Op) -> Pattern {
        Pattern {
            op: Some(op),
            ..Pattern::default()
        }
    }

    /// Adds a `T.RS` constraint.
    pub fn with_rs(mut self, r: Reg) -> Pattern {
        self.rs = Some(r);
        self
    }

    /// Adds a `T.RT` constraint.
    pub fn with_rt(mut self, r: Reg) -> Pattern {
        self.rt = Some(r);
        self
    }

    /// Adds a `T.RD` constraint.
    pub fn with_rd(mut self, r: Reg) -> Pattern {
        self.rd = Some(r);
        self
    }

    /// Adds an immediate predicate.
    pub fn with_imm(mut self, p: ImmPredicate) -> Pattern {
        self.imm = Some(p);
        self
    }

    /// True if the pattern has no constraints at all (matches everything).
    pub fn is_empty(&self) -> bool {
        *self == Pattern::default()
    }

    /// Tests a fetched instruction against the pattern.
    pub fn matches(&self, inst: &Inst) -> bool {
        if let Some(op) = self.op {
            if inst.op != op {
                return false;
            }
        }
        if let Some(class) = self.class {
            if inst.op.class() != class {
                return false;
            }
        }
        if let Some(rs) = self.rs {
            if inst.rs() != Some(rs) {
                return false;
            }
        }
        if let Some(rt) = self.rt {
            if inst.rt() != Some(rt) {
                return false;
            }
        }
        if let Some(rd) = self.rd {
            if inst.rd() != Some(rd) {
                return false;
            }
        }
        if let Some(p) = self.imm {
            if !p.matches(inst.imm) {
                return false;
            }
        }
        true
    }

    /// Specificity score for most-specific-wins resolution: the pattern that
    /// constrains more instruction bits wins. An exact opcode is more
    /// specific than an opcode class; each register or immediate constraint
    /// adds specificity.
    pub fn specificity(&self) -> u32 {
        let mut s = 0;
        if self.op.is_some() {
            s += 4;
        }
        if self.class.is_some() {
            s += 2;
        }
        s += [self.rs.is_some(), self.rt.is_some(), self.rd.is_some()]
            .iter()
            .filter(|b| **b)
            .count() as u32;
        if self.imm.is_some() {
            s += 1;
        }
        s
    }

    /// Conservative static implication test: does every instruction matched
    /// by `self` also match `other`? Used by composition to decide whether
    /// an outer production applies to an inner `T.INSN` entry (see
    /// [`crate::compose`]).
    pub fn implies(&self, other: &Pattern) -> bool {
        let op_ok = match other.op {
            None => true,
            Some(o) => self.op == Some(o),
        };
        let class_ok = match other.class {
            None => true,
            Some(c) => {
                self.class == Some(c) || self.op.map(|o| o.class() == c).unwrap_or(false)
            }
        };
        let reg_ok = |mine: Option<Reg>, theirs: Option<Reg>| match theirs {
            None => true,
            Some(r) => mine == Some(r),
        };
        let imm_ok = match other.imm {
            None => true,
            Some(p) => self.imm == Some(p),
        };
        op_ok
            && class_ok
            && reg_ok(self.rs, other.rs)
            && reg_ok(self.rt, other.rt)
            && reg_ok(self.rd, other.rd)
            && imm_ok
    }

    /// Conservative static disjointness test: is it impossible for any
    /// instruction to match both `self` and `other`? Used by composition to
    /// prove an outer production does *not* apply to an inner entry.
    pub fn disjoint(&self, other: &Pattern) -> bool {
        if let (Some(a), Some(b)) = (self.op, other.op) {
            if a != b {
                return true;
            }
        }
        // Effective class (from explicit class or from an exact opcode).
        let class_of = |p: &Pattern| p.class.or(p.op.map(|o| o.class()));
        if let (Some(a), Some(b)) = (class_of(self), class_of(other)) {
            if a != b {
                return true;
            }
        }
        let reg_conflict = |a: Option<Reg>, b: Option<Reg>| matches!((a, b), (Some(x), Some(y)) if x != y);
        if reg_conflict(self.rs, other.rs)
            || reg_conflict(self.rt, other.rt)
            || reg_conflict(self.rd, other.rd)
        {
            return true;
        }
        matches!(
            (self.imm, other.imm),
            (Some(ImmPredicate::Negative), Some(ImmPredicate::NonNegative))
                | (Some(ImmPredicate::NonNegative), Some(ImmPredicate::Negative))
        ) || matches!(
            (self.imm, other.imm),
            (Some(ImmPredicate::Eq(a)), Some(ImmPredicate::Eq(b))) if a != b
        )
    }

    /// The opcodes this pattern can match, used by the pattern-counter
    /// table (PT miss detection is per-opcode, paper §2.3). `None` means
    /// the pattern is not opcode-restricted and applies to all opcodes in
    /// its class (or all opcodes entirely).
    pub fn opcodes(&self) -> Vec<Op> {
        if let Some(op) = self.op {
            return vec![op];
        }
        match self.class {
            Some(class) => Op::ALL
                .iter()
                .copied()
                .filter(|o| o.class() == class)
                .collect(),
            None => Op::ALL.to_vec(),
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if let Some(op) = self.op {
            parts.push(format!("T.OP == {op}"));
        }
        if let Some(c) = self.class {
            parts.push(format!("T.OPCLASS == {c}"));
        }
        if let Some(r) = self.rs {
            parts.push(format!("T.RS == {r}"));
        }
        if let Some(r) = self.rt {
            parts.push(format!("T.RT == {r}"));
        }
        if let Some(r) = self.rd {
            parts.push(format!("T.RD == {r}"));
        }
        if let Some(p) = self.imm {
            parts.push(p.to_string());
        }
        if parts.is_empty() {
            f.write_str("true")
        } else {
            f.write_str(&parts.join(" && "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(s: &str) -> Inst {
        s.parse().unwrap()
    }

    #[test]
    fn opclass_matching() {
        let p = Pattern::opclass(OpClass::Store);
        assert!(p.matches(&i("stq r1, 0(r2)")));
        assert!(p.matches(&i("stl r1, 0(r2)")));
        assert!(!p.matches(&i("ldq r1, 0(r2)")));
    }

    #[test]
    fn opcode_more_specific_than_class() {
        let by_op = Pattern::opcode(Op::Ldq);
        let by_class = Pattern::opclass(OpClass::Load);
        assert!(by_op.specificity() > by_class.specificity());
    }

    #[test]
    fn register_role_constraints() {
        // Stores through the stack pointer.
        let p = Pattern::opclass(OpClass::Store).with_rs(Reg::SP);
        assert!(p.matches(&i("stq r1, 8(r30)")));
        assert!(!p.matches(&i("stq r1, 8(r2)")));
        // Stores *of* r5 (data register is T.RT).
        let q = Pattern::opclass(OpClass::Store).with_rt(Reg::r(5));
        assert!(q.matches(&i("stq r5, 8(r2)")));
        assert!(!q.matches(&i("stq r6, 8(r2)")));
    }

    #[test]
    fn immediate_predicates() {
        let neg = Pattern::opclass(OpClass::CondBranch).with_imm(ImmPredicate::Negative);
        assert!(neg.matches(&i("bne r1, -8")));
        assert!(!neg.matches(&i("bne r1, 8")));
        let eq = Pattern::opcode(Op::Lda).with_imm(ImmPredicate::Eq(0));
        assert!(eq.matches(&i("lda r1, 0(r2)")));
        assert!(!eq.matches(&i("lda r1, 4(r2)")));
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let p = Pattern::default();
        assert!(p.is_empty());
        assert!(p.matches(&i("nop")));
        assert!(p.matches(&i("stq r1, 0(r2)")));
        assert_eq!(p.specificity(), 0);
    }

    #[test]
    fn implication() {
        let ldq = Pattern::opcode(Op::Ldq);
        let load = Pattern::opclass(OpClass::Load);
        assert!(ldq.implies(&load));
        assert!(!load.implies(&ldq));
        assert!(ldq.implies(&Pattern::default()));
        let sp_load = Pattern::opclass(OpClass::Load).with_rs(Reg::SP);
        assert!(sp_load.implies(&load));
        assert!(!load.implies(&sp_load));
    }

    #[test]
    fn disjointness() {
        let load = Pattern::opclass(OpClass::Load);
        let store = Pattern::opclass(OpClass::Store);
        assert!(load.disjoint(&store));
        assert!(!load.disjoint(&Pattern::opcode(Op::Ldq)));
        assert!(store.disjoint(&Pattern::opcode(Op::Ldq)));
        let sp = Pattern::opclass(OpClass::Load).with_rs(Reg::SP);
        let r7 = Pattern::opclass(OpClass::Load).with_rs(Reg::r(7));
        assert!(sp.disjoint(&r7));
        assert!(!sp.disjoint(&load));
        let neg = Pattern::default().with_imm(ImmPredicate::Negative);
        let pos = Pattern::default().with_imm(ImmPredicate::NonNegative);
        assert!(neg.disjoint(&pos));
        assert!(Pattern::default()
            .with_imm(ImmPredicate::Eq(1))
            .disjoint(&Pattern::default().with_imm(ImmPredicate::Eq(2))));
    }

    #[test]
    fn opcodes_enumeration() {
        assert_eq!(Pattern::opcode(Op::Ldq).opcodes(), vec![Op::Ldq]);
        let loads = Pattern::opclass(OpClass::Load).opcodes();
        assert_eq!(loads, vec![Op::Ldl, Op::Ldq]);
        assert_eq!(Pattern::default().opcodes().len(), Op::ALL.len());
    }

    #[test]
    fn display() {
        let p = Pattern::opclass(OpClass::Load).with_rs(Reg::SP);
        assert_eq!(p.to_string(), "T.OPCLASS == load && T.RS == r30");
    }
}
