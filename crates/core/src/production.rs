//! Productions and production sets.
//!
//! A production pairs a [`Pattern`] with a replacement sequence. For
//! *transparent* productions the replacement-sequence identifier is fixed
//! per pattern; for *aware* productions the identifier is carved out of the
//! trigger's bits — the 11-bit explicit tag of a reserved-opcode codeword
//! (paper §2.1). A [`ProductionSet`] is the architectural, virtual set of
//! active productions; the finite PT/RT in [`crate::engine`] cache it.

use crate::pattern::Pattern;
use crate::spec::ReplacementSpec;
use crate::{CoreError, Result};
use dise_isa::{Inst, Op};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies a replacement sequence in the virtual namespace.
///
/// Aware sequences installed for codeword opcode `cw` with tag `t` get the
/// identifier `aware_base(cw) + t`, so tags from different reserved opcodes
/// never collide.
pub type ReplacementId = u32;

/// How a production names its replacement sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqRef {
    /// Transparent production: a fixed identifier.
    Fixed(ReplacementId),
    /// Aware production: the identifier is `base + T.TAG`, where `T.TAG` is
    /// the trigger's explicit 11-bit tag.
    FromTag {
        /// Identifier of tag 0 for this production's codeword opcode.
        base: ReplacementId,
    },
}

/// A production: pattern → replacement sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Production {
    /// The pattern specification.
    pub pattern: Pattern,
    /// How the replacement-sequence identifier is obtained.
    pub seq: SeqRef,
    /// Match priority. When several rules match, higher priority wins
    /// before specificity is considered. Plain ACFs use priority 0; nested
    /// composition gives inner (first-applied) rules higher priority so
    /// they take precedence over the outer ACF's own rules (§3.3).
    pub priority: u8,
}

/// Base of the aware identifier space for a codeword opcode.
fn aware_base(op: Op) -> ReplacementId {
    let slot = Op::CODEWORDS
        .iter()
        .position(|o| *o == op)
        .expect("aware productions use reserved codeword opcodes") as u32;
    // Leave [0, 2^16) for transparent sequences.
    (1 << 16) + slot * (dise_isa::inst::MAX_TAG as u32 + 1)
}

/// The architectural set of active productions: patterns plus the virtual
/// replacement-sequence store.
///
/// ```
/// use dise_core::{Pattern, ProductionSet, ReplacementSpec};
/// use dise_isa::{Inst, OpClass};
///
/// let mut set = ProductionSet::new();
/// let id = set
///     .add_transparent(Pattern::opclass(OpClass::Store), ReplacementSpec::identity())
///     .unwrap();
/// let store: Inst = "stq r1, 0(r2)".parse().unwrap();
/// assert_eq!(set.lookup(&store), Some(id));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProductionSet {
    rules: Vec<Production>,
    seqs: BTreeMap<ReplacementId, ReplacementSpec>,
    next_transparent: ReplacementId,
}

impl ProductionSet {
    /// Creates an empty set.
    pub fn new() -> ProductionSet {
        ProductionSet::default()
    }

    /// Adds a transparent production, allocating a fresh identifier.
    ///
    /// # Errors
    ///
    /// Fails if the replacement sequence is structurally invalid.
    pub fn add_transparent(
        &mut self,
        pattern: Pattern,
        spec: ReplacementSpec,
    ) -> Result<ReplacementId> {
        spec.validate()?;
        let id = self.next_transparent;
        if id >= 1 << 16 {
            return Err(CoreError::BadProduction(
                "transparent sequence namespace exhausted".into(),
            ));
        }
        self.next_transparent += 1;
        self.seqs.insert(id, spec);
        self.rules.push(Production {
            pattern,
            seq: SeqRef::Fixed(id),
            priority: 0,
        });
        Ok(id)
    }

    /// Adds a transparent production with an explicit match priority.
    /// Higher-priority rules beat lower-priority ones regardless of
    /// specificity; used by nested composition (§3.3).
    ///
    /// # Errors
    ///
    /// Fails if the replacement sequence is structurally invalid.
    pub fn add_transparent_prioritized(
        &mut self,
        pattern: Pattern,
        spec: ReplacementSpec,
        priority: u8,
    ) -> Result<ReplacementId> {
        let id = self.add_transparent(pattern, spec)?;
        self.rules
            .last_mut()
            .expect("just pushed")
            .priority = priority;
        Ok(id)
    }

    /// The highest priority of any rule in the set (0 if empty).
    pub fn max_priority(&self) -> u8 {
        self.rules.iter().map(|r| r.priority).max().unwrap_or(0)
    }

    /// Sets the match priority of the aware rule for `cw_op`, if present
    /// (used by nested composition so composed aware rules shadow outer
    /// transparent rules).
    pub fn set_codeword_priority(&mut self, cw_op: Op, priority: u8) {
        for rule in &mut self.rules {
            if rule.pattern == Pattern::opcode(cw_op)
                && matches!(rule.seq, SeqRef::FromTag { .. })
            {
                rule.priority = priority;
            }
        }
    }

    /// Adds a transparent production that maps `pattern` to an
    /// already-installed sequence (several patterns may share one sequence,
    /// as Figure 1's load and store patterns share R1).
    ///
    /// # Errors
    ///
    /// Fails if `id` is not installed.
    pub fn add_pattern(&mut self, pattern: Pattern, id: ReplacementId) -> Result<()> {
        if !self.seqs.contains_key(&id) {
            return Err(CoreError::UnknownSequence(id));
        }
        self.rules.push(Production {
            pattern,
            seq: SeqRef::Fixed(id),
            priority: 0,
        });
        Ok(())
    }

    /// Declares an aware production for reserved opcode `cw_op`: any fetched
    /// codeword with that opcode expands to the sequence named by its tag.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `cw_op` is not a reserved codeword opcode.
    pub fn add_aware_rule(&mut self, cw_op: Op) {
        assert!(cw_op.is_codeword());
        let base = aware_base(cw_op);
        let rule = Production {
            pattern: Pattern::opcode(cw_op),
            seq: SeqRef::FromTag { base },
            priority: 0,
        };
        if !self.rules.contains(&rule) {
            self.rules.push(rule);
        }
    }

    /// Installs an aware replacement sequence (a "dictionary entry") under
    /// `(cw_op, tag)` and ensures the matching aware rule exists.
    ///
    /// # Errors
    ///
    /// Fails if the spec is invalid or the tag exceeds 11 bits.
    pub fn add_aware(
        &mut self,
        cw_op: Op,
        tag: u16,
        spec: ReplacementSpec,
    ) -> Result<ReplacementId> {
        spec.validate()?;
        if tag > dise_isa::inst::MAX_TAG {
            return Err(CoreError::BadProduction(format!(
                "tag {tag} exceeds 11 bits"
            )));
        }
        self.add_aware_rule(cw_op);
        let id = aware_base(cw_op) + tag as u32;
        self.seqs.insert(id, spec);
        Ok(id)
    }

    /// The rules, in installation order.
    pub fn rules(&self) -> &[Production] {
        &self.rules
    }

    /// Looks up a replacement sequence by identifier.
    pub fn seq(&self, id: ReplacementId) -> Option<&ReplacementSpec> {
        self.seqs.get(&id)
    }

    /// Iterates over all installed `(id, sequence)` pairs.
    pub fn seqs(&self) -> impl Iterator<Item = (ReplacementId, &ReplacementSpec)> {
        self.seqs.iter().map(|(id, s)| (*id, s))
    }

    /// Number of rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Number of installed sequences.
    pub fn num_seqs(&self) -> usize {
        self.seqs.len()
    }

    /// True if the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Architectural match: the most specific matching rule's replacement
    /// identifier for this instruction, if any. Ties go to the
    /// earliest-installed rule.
    ///
    /// This is the *functional* semantics; the finite-PT model in
    /// [`crate::engine`] produces the same answer modulo miss events.
    pub fn lookup(&self, inst: &Inst) -> Option<ReplacementId> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(_, p)| p.pattern.matches(inst))
            // Highest (priority, specificity) wins; ties go to the earliest
            // installed rule.
            .max_by_key(|(i, p)| {
                (p.priority, p.pattern.specificity(), usize::MAX - *i)
            })
            .map(|(_, p)| match p.seq {
                SeqRef::Fixed(id) => id,
                SeqRef::FromTag { base } => base + inst.codeword_tag() as u32,
            })
    }

    /// All rules whose pattern could match opcode `op`, used for per-opcode
    /// PT fills (paper §2.3).
    pub fn rules_for_opcode(&self, op: Op) -> Vec<&Production> {
        self.rules
            .iter()
            .filter(|p| p.pattern.opcodes().contains(&op))
            .collect()
    }

    /// Merges another set's rules and sequences into this one, remapping the
    /// other set's transparent identifiers to avoid collisions. Aware
    /// sequences keep their `(opcode, tag)` identity; colliding tags are an
    /// error.
    ///
    /// # Errors
    ///
    /// Fails on aware tag collisions.
    pub fn absorb(&mut self, other: &ProductionSet) -> Result<()> {
        let mut remap: BTreeMap<ReplacementId, ReplacementId> = BTreeMap::new();
        for (id, spec) in &other.seqs {
            if *id < 1 << 16 {
                let new_id = self.next_transparent;
                if new_id >= 1 << 16 {
                    return Err(CoreError::BadProduction(
                        "transparent sequence namespace exhausted".into(),
                    ));
                }
                self.next_transparent += 1;
                self.seqs.insert(new_id, spec.clone());
                remap.insert(*id, new_id);
            } else {
                if self.seqs.contains_key(id) {
                    return Err(CoreError::Compose(format!(
                        "aware tag collision on identifier {id}"
                    )));
                }
                self.seqs.insert(*id, spec.clone());
            }
        }
        for rule in &other.rules {
            let seq = match rule.seq {
                SeqRef::Fixed(id) => SeqRef::Fixed(*remap.get(&id).unwrap_or(&id)),
                aware @ SeqRef::FromTag { .. } => aware,
            };
            let new_rule = Production {
                pattern: rule.pattern,
                seq,
                priority: rule.priority,
            };
            if !self.rules.contains(&new_rule) {
                self.rules.push(new_rule);
            }
        }
        Ok(())
    }
}

impl fmt::Display for ProductionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            let target = match rule.seq {
                SeqRef::Fixed(id) => format!("R{id}"),
                SeqRef::FromTag { base } => format!("TAG(base={base})"),
            };
            writeln!(f, "P{}: {} -> {}", i + 1, rule.pattern, target)?;
        }
        for (id, seq) in &self.seqs {
            writeln!(f, "R{id}:")?;
            for line in seq.to_string().lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::InstSpec;
    use dise_isa::{OpClass, Reg};

    fn i(s: &str) -> Inst {
        s.parse().unwrap()
    }

    #[test]
    fn most_specific_wins() {
        let mut set = ProductionSet::new();
        // "All loads" does real work; "loads off the stack pointer" is the
        // negative pattern performing the identity expansion (paper §2.2).
        let work = set
            .add_transparent(
                Pattern::opclass(OpClass::Load),
                ReplacementSpec::new(vec![InstSpec::Trigger, InstSpec::Trigger]),
            )
            .unwrap();
        let ident = set
            .add_transparent(
                Pattern::opclass(OpClass::Load).with_rs(Reg::SP),
                ReplacementSpec::identity(),
            )
            .unwrap();
        assert_eq!(set.lookup(&i("ldq r1, 0(r7)")), Some(work));
        assert_eq!(set.lookup(&i("ldq r1, 0(r30)")), Some(ident));
        assert_eq!(set.lookup(&i("stq r1, 0(r30)")), None);
    }

    #[test]
    fn shared_sequences() {
        let mut set = ProductionSet::new();
        let id = set
            .add_transparent(
                Pattern::opclass(OpClass::Store),
                ReplacementSpec::identity(),
            )
            .unwrap();
        set.add_pattern(Pattern::opclass(OpClass::Load), id).unwrap();
        assert_eq!(set.lookup(&i("ldq r1, 0(r2)")), Some(id));
        assert_eq!(set.lookup(&i("stq r1, 0(r2)")), Some(id));
        assert_eq!(set.num_seqs(), 1);
        assert_eq!(set.num_rules(), 2);
    }

    #[test]
    fn aware_tags_select_sequences() {
        let mut set = ProductionSet::new();
        let a = set
            .add_aware(Op::Cw0, 0, ReplacementSpec::identity())
            .unwrap();
        let b = set
            .add_aware(
                Op::Cw0,
                7,
                ReplacementSpec::new(vec![InstSpec::Trigger, InstSpec::Trigger]),
            )
            .unwrap();
        assert_ne!(a, b);
        let cw0 = Inst::codeword(Op::Cw0, 0, 0, 0, 0);
        let cw7 = Inst::codeword(Op::Cw0, 0, 0, 0, 7);
        assert_eq!(set.lookup(&cw0), Some(a));
        assert_eq!(set.lookup(&cw7), Some(b));
        // Tag with no installed sequence resolves to an id with no spec.
        let cw9 = Inst::codeword(Op::Cw0, 0, 0, 0, 9);
        let id9 = set.lookup(&cw9).unwrap();
        assert!(set.seq(id9).is_none());
    }

    #[test]
    fn aware_opcodes_do_not_collide() {
        let mut set = ProductionSet::new();
        let a = set
            .add_aware(Op::Cw0, 5, ReplacementSpec::identity())
            .unwrap();
        let b = set
            .add_aware(Op::Cw1, 5, ReplacementSpec::identity())
            .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn rules_for_opcode() {
        let mut set = ProductionSet::new();
        set.add_transparent(
            Pattern::opclass(OpClass::Load),
            ReplacementSpec::identity(),
        )
        .unwrap();
        set.add_transparent(Pattern::opcode(Op::Ldq), ReplacementSpec::identity())
            .unwrap();
        assert_eq!(set.rules_for_opcode(Op::Ldq).len(), 2);
        assert_eq!(set.rules_for_opcode(Op::Ldl).len(), 1);
        assert_eq!(set.rules_for_opcode(Op::Stq).len(), 0);
    }

    #[test]
    fn absorb_remaps_transparent_ids() {
        let mut a = ProductionSet::new();
        let ida = a
            .add_transparent(
                Pattern::opclass(OpClass::Store),
                ReplacementSpec::identity(),
            )
            .unwrap();
        let mut b = ProductionSet::new();
        b.add_transparent(
            Pattern::opclass(OpClass::Load),
            ReplacementSpec::new(vec![InstSpec::Trigger, InstSpec::Trigger]),
        )
        .unwrap();
        a.absorb(&b).unwrap();
        assert_eq!(a.num_rules(), 2);
        assert_eq!(a.num_seqs(), 2);
        let load_id = a.lookup(&i("ldq r1, 0(r2)")).unwrap();
        assert_ne!(load_id, ida);
        assert_eq!(a.seq(load_id).unwrap().len(), 2);
    }

    #[test]
    fn absorb_detects_aware_collisions() {
        let mut a = ProductionSet::new();
        a.add_aware(Op::Cw0, 3, ReplacementSpec::identity()).unwrap();
        let mut b = ProductionSet::new();
        b.add_aware(Op::Cw0, 3, ReplacementSpec::identity()).unwrap();
        assert!(matches!(a.absorb(&b), Err(CoreError::Compose(_))));
    }

    #[test]
    fn display_renders_rules_and_sequences() {
        let mut set = ProductionSet::new();
        set.add_transparent(
            Pattern::opclass(OpClass::Store),
            ReplacementSpec::identity(),
        )
        .unwrap();
        let text = set.to_string();
        assert!(text.contains("P1: T.OPCLASS == store -> R0"));
        assert!(text.contains("T.INSN"));
    }
}
