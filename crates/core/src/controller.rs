//! The DISE controller (paper §2.3).
//!
//! The controller mediates all PT/RT manipulation: it owns the
//! architectural (virtual) production set, translates productions into the
//! internal table formats on demand-fill, and — for the composed-ACF
//! configurations of §4.3 — inlines a transparent production set into aware
//! replacement sequences *at RT-miss time*, so that composite productions
//! are represented in the RT only.

use crate::compose;
use crate::production::{ProductionSet, ReplacementId};
use crate::spec::ReplacementSpec;
use crate::{CoreError, Result};
use std::borrow::Cow;

/// Which structure missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissKind {
    /// Pattern-table miss (per-opcode pattern fill).
    Pt,
    /// Replacement-table miss (sequence fill).
    Rt,
}

/// The controller: owns the production set and resolves replacement
/// sequences for RT fills.
#[derive(Debug, Clone)]
pub struct Controller {
    productions: ProductionSet,
    /// When set, RT fills of *aware* sequences (explicit-tag identifiers)
    /// inline this transparent set into the sequence before installing it —
    /// the client-side transparent∘aware composition of §3.3, invoked from
    /// the RT miss handler.
    inline_on_fill: Option<ProductionSet>,
}

impl Controller {
    /// Creates a controller over `productions`.
    pub fn new(productions: ProductionSet) -> Controller {
        Controller {
            productions,
            inline_on_fill: None,
        }
    }

    /// Enables compose-on-miss: `transparent` is inlined into every aware
    /// sequence when it is faulted into the RT. Fills that compose are
    /// charged the engine's `compose_penalty` instead of `miss_penalty`.
    pub fn with_inline_on_fill(mut self, transparent: ProductionSet) -> Controller {
        self.inline_on_fill = Some(transparent);
        self
    }

    /// The architectural production set.
    pub fn productions(&self) -> &ProductionSet {
        &self.productions
    }

    /// Mutable access to the production set (runtime production
    /// installation through the controller API, §2.3).
    pub fn productions_mut(&mut self) -> &mut ProductionSet {
        &mut self.productions
    }

    /// True if compose-on-miss is enabled.
    pub fn composes_on_fill(&self) -> bool {
        self.inline_on_fill.is_some()
    }

    /// Resolves the replacement sequence for an RT fill. Returns the spec
    /// and whether composition was performed (determining the miss
    /// penalty).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownSequence`] for an uninstalled identifier
    /// and composition errors from the inliner.
    pub fn resolve_spec(&self, id: ReplacementId) -> Result<(Cow<'_, ReplacementSpec>, bool)> {
        let spec = self
            .productions
            .seq(id)
            .ok_or(CoreError::UnknownSequence(id))?;
        let is_aware = id >= (1 << 16);
        match (&self.inline_on_fill, is_aware) {
            (Some(transparent), true) => {
                let composed = compose::inline(transparent, spec)?;
                Ok((Cow::Owned(composed), true))
            }
            _ => Ok((Cow::Borrowed(spec), false)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::spec::{ImmDirective, InstSpec, OpDirective, RegDirective};
    use dise_isa::{Op, OpClass, Reg};

    fn check_spec() -> ReplacementSpec {
        ReplacementSpec::new(vec![
            InstSpec::Templated {
                op: OpDirective::Literal(Op::Srl),
                ra: RegDirective::TriggerRs,
                rb: RegDirective::Literal(Reg::ZERO),
                rc: RegDirective::Literal(Reg::dr(1)),
                imm: ImmDirective::Literal(26),
                uses_lit: true,
                dise_branch: false,
            },
            InstSpec::Trigger,
        ])
    }

    #[test]
    fn plain_fills_do_not_compose() {
        let mut set = ProductionSet::new();
        let id = set
            .add_transparent(Pattern::opclass(OpClass::Store), check_spec())
            .unwrap();
        let c = Controller::new(set);
        let (spec, composed) = c.resolve_spec(id).unwrap();
        assert!(!composed);
        assert_eq!(spec.len(), 2);
        assert!(matches!(
            c.resolve_spec(9999),
            Err(CoreError::UnknownSequence(9999))
        ));
    }

    #[test]
    fn aware_fills_compose_when_enabled() {
        // Aware sequence containing a store...
        let mut aware = ProductionSet::new();
        let store: dise_isa::Inst = "stq r1, 0(r2)".parse().unwrap();
        let id = aware
            .add_aware(
                Op::Cw0,
                0,
                ReplacementSpec::new(vec![InstSpec::literal(store)]),
            )
            .unwrap();
        // ...with transparent MFI to be inlined at fill time.
        let mut mfi = ProductionSet::new();
        mfi.add_transparent(Pattern::opclass(OpClass::Store), check_spec())
            .unwrap();
        let c = Controller::new(aware).with_inline_on_fill(mfi);
        assert!(c.composes_on_fill());
        let (spec, composed) = c.resolve_spec(id).unwrap();
        assert!(composed);
        // The store expands to [srl, store] inside the dictionary entry.
        assert_eq!(spec.len(), 2);
    }
}
