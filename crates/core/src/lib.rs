#![warn(missing_docs)]

//! # dise-core: the DISE engine
//!
//! This crate implements Dynamic Instruction Stream Editing (paper §2): a
//! programmable macro engine that inspects every fetched instruction and
//! expands those matching *productions* into parameterized replacement
//! sequences.
//!
//! The pieces, mirroring the paper's structure:
//!
//! * [`Pattern`] — pattern specifications over opcode, opcode class,
//!   register names and immediate attributes, with most-specific-wins
//!   resolution enabling negative/overlapping patterns (§2.2).
//! * [`ReplacementSpec`] / [`InstSpec`] — parameterized replacement-sequence
//!   specifications whose fields carry instantiation *directives*
//!   (literal / dedicated / `T.RS` / `T.RT` / `T.RD` / `T.IMM` / `T.INSN` /
//!   codeword parameters, §2.1).
//! * [`ProductionSet`] — the architectural (virtual) set of productions,
//!   supporting both *transparent* rules (fixed replacement-sequence
//!   identifier) and *aware* rules (identifier taken from the trigger's
//!   explicit tag, §2.1).
//! * [`DiseEngine`] — the microarchitectural model: a finite pattern table
//!   (PT), a finite replacement table (RT, direct-mapped / set-associative /
//!   perfect), instantiation logic, and the pattern-counter table used to
//!   detect PT misses (§2.2–2.3).
//! * [`Controller`] — the PT/RT miss handler: demand-fills the tables from
//!   the production set, charging 30-cycle simple misses or 150-cycle
//!   misses when productions must be composed on the fly (§2.3, §4).
//! * [`compose`] — ACF composition: nested composition by replacement-
//!   sequence inlining (with dedicated-register renaming) and non-nested
//!   merging (§3.3).
//! * [`dsl`] — the textual production language used throughout the paper's
//!   figures (`P1: T.OPCLASS == store -> R1 ...`).
//!
//! ## Example: Figure 1 of the paper
//!
//! ```
//! use dise_core::{dsl, DiseEngine, EngineConfig, Expansion};
//! use dise_isa::Inst;
//!
//! let productions = dsl::parse(
//!     "P1: T.OPCLASS == store -> R1
//!      P2: T.OPCLASS == load  -> R1
//!      R1: srl T.RS, #26, $dr1
//!          cmpeq $dr1, $dr2, $dr1
//!          beq $dr1, =error
//!          T.INSN",
//!     &[("error".to_string(), 0x7000)].into_iter().collect(),
//! )
//! .unwrap();
//!
//! let mut engine = DiseEngine::with_productions(
//!     EngineConfig::default(),
//!     productions,
//! ).unwrap();
//!
//! let store: Inst = "stq r0, 0(r2)".parse().unwrap();
//! // First touches miss in the cold PT and RT; the processor charges the
//! // stalls and re-inspects.
//! let expansion = loop {
//!     match engine.inspect(&store) {
//!         Expansion::Miss { .. } => continue,
//!         other => break other,
//!     }
//! };
//! let Expansion::Expand { id, len } = expansion else { panic!() };
//! assert_eq!(len, 4);
//! let first = engine.fetch_replacement(id, 0, &store, 0x1000).unwrap();
//! assert_eq!(first.to_string(), "srl r2, #26, $dr1");
//! ```

pub mod compose;
pub mod controller;
pub mod dsl;
pub mod engine;
pub mod frontend;
pub mod pattern;
pub mod production;
pub mod spec;

pub use controller::{Controller, MissKind};
pub use engine::{
    acf_arena_env, parse_acf_arena, BlockOutcome, DiseEngine, EngineConfig, EngineState,
    EngineStats, Expansion, RtOrganization, RtState,
};
pub use frontend::SharedFrontend;
pub use pattern::{ImmPredicate, Pattern};
pub use production::{Production, ProductionSet, ReplacementId, SeqRef};
pub use spec::{ImmDirective, InstSpec, OpDirective, RegDirective, ReplacementSpec};

/// Errors produced by the DISE engine and its tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A replacement-sequence identifier is not defined in the production
    /// set.
    UnknownSequence(ReplacementId),
    /// Instantiating a replacement instruction failed (e.g. a `T.RT`
    /// directive on a trigger with no second source).
    Instantiate(String),
    /// A production is malformed (e.g. empty replacement sequence, DISE
    /// branch target out of sequence bounds).
    BadProduction(String),
    /// Production-DSL parse error.
    Dsl(String),
    /// ACF composition failed (e.g. statically undecidable pattern match or
    /// no free dedicated registers for renaming).
    Compose(String),
    /// Reinjecting exported engine state failed (snapshot restore against
    /// a mismatched production set, RT geometry, or PT capacity).
    Restore(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownSequence(id) => write!(f, "unknown replacement sequence R{id}"),
            CoreError::Instantiate(why) => write!(f, "instantiation failed: {why}"),
            CoreError::BadProduction(why) => write!(f, "bad production: {why}"),
            CoreError::Dsl(why) => write!(f, "production DSL error: {why}"),
            CoreError::Compose(why) => write!(f, "composition failed: {why}"),
            CoreError::Restore(why) => write!(f, "engine state restore failed: {why}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
