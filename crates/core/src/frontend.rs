//! Process-shareable frontend state.
//!
//! A sweep process simulates the same program image under dozens of engine
//! configurations. Two pieces of per-engine frontend state depend only on
//! the *architectural* production set — never on PT/RT capacity, residency
//! or statistics — and can therefore be computed once per (program image,
//! production set) pair and handed to every cell as shared immutable data:
//!
//! * the **static match index** ([`build_op_rules`]): for each opcode
//!   number, the indices of the rules whose patterns cover it, in rule
//!   order; and
//! * the **architectural expansion memo** ([`SharedFrontend`]): for every
//!   raw instruction word in the program image, the steady-state
//!   inspection outcome (pass through, or expand to `(id, len)`).
//!
//! The memo is only consulted when the engine's pattern-counter table
//! shows `active == resident` for the fetched opcode — exactly the
//! condition under which every rule that could match is PT-resident and
//! the match outcome is architecturally determined. PT misses, RT misses
//! and faults always take the live path, so [`crate::EngineStats`] stay
//! bit-identical to an unshared engine (differential-tested in the engine
//! unit tests and `crates/bench/tests/shared_frontend.rs`).

use crate::controller::Controller;
use crate::production::{Production, ReplacementId, SeqRef};
use dise_isa::Inst;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Number of opcode slots in the per-opcode tables (opcode numbers are 6
/// bits, mirroring the engine's pattern-counter table).
pub const NUM_OPCODES: usize = 64;

/// Builds the static per-opcode match index over `rules`: entry `n` holds
/// the indices (ascending) of the rules whose patterns cover opcode number
/// `n`. Depends only on the rule list; the engine rebuilds it on runtime
/// production installs.
pub fn build_op_rules(rules: &[Production]) -> Vec<Vec<usize>> {
    let mut table = vec![Vec::new(); NUM_OPCODES];
    for (i, rule) in rules.iter().enumerate() {
        for op in rule.pattern.opcodes() {
            table[op.number() as usize].push(i);
        }
    }
    table
}

/// Read-only frontend state shared by every engine simulating the same
/// (program image, production set) pair. See the module docs for the
/// validity argument; construction is [`SharedFrontend::build`], sharing
/// is by [`Arc`] (typically through the simulator crate's frontend arena).
pub struct SharedFrontend {
    /// The static match index (see [`build_op_rules`]).
    op_rules: Arc<Vec<Vec<usize>>>,
    /// Raw instruction word → architectural steady-state outcome. `None`
    /// means no pattern matches (pass through); `Some((id, len))` means
    /// the word triggers sequence `id` of `len` replacement instructions.
    /// Words whose identifier does not resolve (runtime faults) are
    /// absent, as are words of opcodes no pattern covers (the engine
    /// resolves those from its counters before probing).
    arch_memo: HashMap<u32, Option<(ReplacementId, u8)>>,
}

impl SharedFrontend {
    /// Builds the shared layer over `controller`'s production set for a
    /// program image given as `(decoded instruction, raw word)` pairs —
    /// typically every decodable even byte offset of a
    /// [`dise_isa::Predecode`] table, mid-instruction decodes included
    /// (indirect jumps can land anywhere). Duplicate words are collapsed;
    /// sequence lengths come from [`Controller::resolve_spec`], so
    /// compose-on-fill controllers record their composed lengths.
    pub fn build<I>(controller: &Controller, words: I) -> SharedFrontend
    where
        I: IntoIterator<Item = (Inst, u32)>,
    {
        let rules = controller.productions().rules();
        let op_rules = Arc::new(build_op_rules(rules));
        let mut arch_memo = HashMap::new();
        for (inst, raw) in words {
            if arch_memo.contains_key(&raw) {
                continue;
            }
            let covering = &op_rules[inst.op.number() as usize];
            if covering.is_empty() {
                // The engine early-exits on its (0, 0) counters without
                // probing the memo; storing `None` would be dead weight.
                continue;
            }
            // The same fully-associative match the engine performs: most
            // specific resident pattern wins, ties broken toward the
            // earliest-installed rule. With `active == resident` the
            // resident set is exactly `covering`.
            let best = covering
                .iter()
                .map(|i| (*i, &rules[*i]))
                .filter(|(_, r)| r.pattern.matches(&inst))
                .max_by_key(|(i, r)| (r.priority, r.pattern.specificity(), usize::MAX - *i));
            let Some((_, rule)) = best else {
                arch_memo.insert(raw, None);
                continue;
            };
            let id = match rule.seq {
                SeqRef::Fixed(id) => id,
                SeqRef::FromTag { base } => base + inst.codeword_tag() as u32,
            };
            // Unresolvable identifiers are program faults; leaving them
            // out of the memo routes them to the live (fault-reporting)
            // path every time, exactly like an unshared engine.
            if let Ok((spec, _)) = controller.resolve_spec(id) {
                arch_memo.insert(raw, Some((id, spec.len() as u8)));
            }
        }
        SharedFrontend { op_rules, arch_memo }
    }

    /// The static match index, for engines to adopt by `Arc` clone.
    pub fn op_rules(&self) -> &Arc<Vec<Vec<usize>>> {
        &self.op_rules
    }

    /// The architectural outcome memoized for `raw`: `None` if the word
    /// is unknown (take the live path), `Some(None)` for pass-through,
    /// `Some(Some((id, len)))` for an expansion.
    #[inline]
    pub fn lookup(&self, raw: u32) -> Option<Option<(ReplacementId, u8)>> {
        self.arch_memo.get(&raw).copied()
    }

    /// Number of memoized words (resident-size reporting and tests).
    pub fn memo_len(&self) -> usize {
        self.arch_memo.len()
    }
}

impl fmt::Debug for SharedFrontend {
    /// A summary, not the tables: the memo is a `HashMap` whose iteration
    /// order is nondeterministic, and nothing downstream may ever key on
    /// this type's `Debug` form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedFrontend")
            .field("memo_words", &self.arch_memo.len())
            .field(
                "indexed_rules",
                &self.op_rules.iter().map(Vec::len).sum::<usize>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use crate::production::ProductionSet;
    use crate::spec::ReplacementSpec;
    use dise_isa::OpClass;

    fn store_set() -> ProductionSet {
        let mut set = ProductionSet::new();
        set.add_transparent(Pattern::opclass(OpClass::Store), ReplacementSpec::identity())
            .unwrap();
        set
    }

    #[test]
    fn op_rules_cover_exactly_the_pattern_opcodes() {
        let set = store_set();
        let table = build_op_rules(set.rules());
        let store: Inst = "stq r1, 0(r2)".parse().unwrap();
        let load: Inst = "ldq r1, 0(r2)".parse().unwrap();
        assert_eq!(table[store.op.number() as usize], vec![0]);
        assert!(table[load.op.number() as usize].is_empty());
    }

    #[test]
    fn build_memoizes_matches_and_passes() {
        let controller = Controller::new(store_set());
        let store: Inst = "stq r1, 0(r2)".parse().unwrap();
        let other_store: Inst = "stl r4, 8(r5)".parse().unwrap();
        let load: Inst = "ldq r1, 0(r2)".parse().unwrap();
        let words = [store, other_store, load, store]
            .into_iter()
            .map(|i| (i, i.encode().unwrap()));
        let f = SharedFrontend::build(&controller, words);
        // Both stores expand to the identity sequence; the load's opcode
        // is uncovered and stays out of the memo entirely.
        let hit = f.lookup(store.encode().unwrap()).expect("memoized");
        assert_eq!(hit.map(|(_, len)| len), Some(1));
        assert!(f.lookup(other_store.encode().unwrap()).is_some());
        assert_eq!(f.lookup(load.encode().unwrap()), None);
        assert_eq!(f.memo_len(), 2);
    }
}
