//! The DISE engine hardware model: pattern table (PT), replacement table
//! (RT), pattern-counter table, and instantiation logic (paper §2.2–2.3).
//!
//! The PT is a small fully-associative structure holding resident pattern
//! specifications; the most specific matching resident pattern wins. PT
//! misses are detected with the pattern-counter table: a per-opcode pair of
//! counters (active vs. resident patterns); a fetched opcode whose counters
//! differ indicates that patterns for it are missing, triggering a fill of
//! all patterns for that opcode (§2.3).
//!
//! The RT is a cache of replacement-sequence instructions, each entry tagged
//! by `(replacement id, DISEPC)` and carrying the sequence length. It may be
//! direct-mapped, set-associative, or modeled as perfect. RT misses fill the
//! whole missing sequence through the [`Controller`], which charges the
//! 30-cycle simple-miss penalty or the 150-cycle penalty when the fill must
//! compose productions on the fly (§4).

use crate::controller::Controller;
use crate::frontend::{self, SharedFrontend};
use crate::production::{ProductionSet, ReplacementId};
use crate::spec::{ImmDirective, InstSpec, OpDirective, RegDirective};
use crate::{CoreError, Result};
use dise_isa::{Inst, Op};
use std::collections::HashMap;
use std::sync::Arc;

/// Replacement-table organization (Figure 7 bottom sweeps these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtOrganization {
    /// One entry per set.
    DirectMapped,
    /// `n`-way set-associative with LRU replacement.
    SetAssociative(u32),
    /// Infinite capacity (the paper's "perfect RT").
    Perfect,
}

/// DISE engine configuration. Defaults are the paper's: 32 PT entries, a
/// 2K-entry 2-way RT, 30-cycle misses, 150-cycle composing misses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Pattern-table capacity in pattern entries.
    pub pt_entries: usize,
    /// Replacement-table capacity in replacement-instruction entries.
    pub rt_entries: usize,
    /// Replacement-table organization.
    pub rt_org: RtOrganization,
    /// Replacement-instruction specifications coalesced per RT entry
    /// (§2.2: blocks reduce RT read ports at the expense of internal
    /// fragmentation — a sequence of length `L` occupies
    /// `ceil(L / rt_block) * rt_block` instruction slots). 1 disables
    /// coalescing.
    pub rt_block: u32,
    /// Pipeline stall charged for a simple PT or RT miss.
    pub miss_penalty: u64,
    /// Pipeline stall charged for an RT miss whose handler must compose
    /// productions (transparent-into-aware inlining, §3.3/§4.3).
    pub compose_penalty: u64,
    /// Enables the host-side frontend fast path: the per-opcode PT match
    /// index, the expansion memo, and the instantiation memo. Purely a
    /// simulation-speed knob — architectural results and every
    /// [`EngineStats`] counter are bit-identical either way (the memos are
    /// invalidated on every event that could change an outcome, and memo
    /// hits replay the slow path's RT reference so LRU state stays in
    /// lockstep). Off reproduces the original linear-scan decode path.
    pub fast_path: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            pt_entries: 32,
            rt_entries: 2048,
            rt_org: RtOrganization::SetAssociative(2),
            rt_block: 1,
            miss_penalty: 30,
            compose_penalty: 150,
            fast_path: true,
        }
    }
}

impl EngineConfig {
    /// A perfect (infinite, zero-miss-cost after first touch) RT, used by
    /// Figure 7 middle / Figure 8 top.
    pub fn perfect_rt(mut self) -> EngineConfig {
        self.rt_org = RtOrganization::Perfect;
        self
    }

    /// Disables the frontend fast path (see [`EngineConfig::fast_path`]).
    pub fn slow_path(mut self) -> EngineConfig {
        self.fast_path = false;
        self
    }
}

/// Outcome of inspecting one fetched instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expansion {
    /// No pattern matches: the instruction passes through unmodified.
    None,
    /// The instruction is a trigger; it expands to sequence `id` of length
    /// `len`.
    Expand {
        /// Replacement-sequence identifier.
        id: ReplacementId,
        /// Sequence length in instructions.
        len: u8,
    },
    /// A PT or RT miss occurred. The engine has already performed the fill
    /// (re-inspecting now hits); the processor must flush and stall for
    /// `penalty` cycles (§2.3: "the pipeline is flushed and the missing
    /// productions are loaded procedurally").
    Miss {
        /// Whether this was a PT or an RT miss.
        kind: crate::controller::MissKind,
        /// Stall cycles to charge.
        penalty: u64,
    },
    /// A codeword named a tag with no installed sequence; executing it is a
    /// program error.
    Fault {
        /// The unresolvable identifier.
        id: ReplacementId,
    },
}

/// What a block translator may bake for one fetched instruction: the
/// *architectural* inspection outcome, computed without touching the PT,
/// the RT, the memos, or the statistics. Valid exactly as long as the
/// engine's [`DiseEngine::generation`] is unchanged — the generation
/// advances on every event that can change this answer (PT fills, runtime
/// installs, context switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockOutcome {
    /// The pattern counters for this opcode disagree (`active !=
    /// resident`): the next inspection is a PT miss, whose fill both
    /// changes future outcomes and bumps the generation. Not bakeable.
    NotReady,
    /// No pattern matches; the instruction passes through unmodified.
    Pass,
    /// The instruction triggers replacement sequence `id` of length `len`.
    Expand {
        /// Replacement-sequence identifier.
        id: ReplacementId,
        /// Sequence length in instructions.
        len: u8,
    },
    /// The matched rule names a sequence that cannot be resolved;
    /// executing the instruction is a program error. Not bakeable.
    Fault,
}

/// Counters the engine accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instructions inspected.
    pub inspected: u64,
    /// Instructions that triggered an expansion.
    pub expansions: u64,
    /// Replacement instructions produced.
    pub replacement_insts: u64,
    /// PT misses.
    pub pt_misses: u64,
    /// RT misses.
    pub rt_misses: u64,
    /// RT fills that required on-the-fly composition.
    pub composed_fills: u64,
    /// Total stall cycles charged for misses.
    pub stall_cycles: u64,
}

impl EngineStats {
    /// The counters under their registry names (without the `engine.`
    /// prefix the simulator's stats registry adds). `pt_probes` is an
    /// alias of `inspected`: every inspected instruction probes the PT
    /// index exactly once, on the memoized fast path and the plain path
    /// alike.
    pub fn named_counters(&self) -> [(&'static str, u64); 8] {
        [
            ("composed_fills", self.composed_fills),
            ("expansions", self.expansions),
            ("inspected", self.inspected),
            ("pt_misses", self.pt_misses),
            ("pt_probes", self.inspected),
            ("replacement_insts", self.replacement_insts),
            ("rt_misses", self.rt_misses),
            ("stall_cycles", self.stall_cycles),
        ]
    }
}

/// One RT entry's payload: a block of up to `rt_block` consecutive
/// replacement instruction specs (plus the sequence length the fetch
/// interface reports).
#[derive(Debug, Clone, Default)]
struct RtSeq {
    seq_len: u8,
    specs: Vec<InstSpec>,
}

/// RT storage: a set-indexed cache or a perfect map. Keys are
/// `(id, base DISEPC)` at block granularity.
///
/// The cache keeps keys and payloads in two flat parallel arrays
/// (`assoc` slots per set, MRU-first, compact) instead of a
/// vec-of-vecs: an RT reference happens for every µop the simulator's
/// translated-block path executes, and the flat layout turns it into
/// one predictable cache-line load and a couple of ALU ops instead of
/// two dependent pointer chases through scattered per-set allocations.
#[derive(Debug)]
enum RtStore {
    Cache {
        /// Packed keys, `assoc` slots per set (a slot is empty iff it
        /// is 0 — live keys have a nonzero spec count in the low byte).
        /// Layout: `id << 16 | base << 8 | spec_count`; both the tag
        /// match and the `off < specs.len()` residency check are
        /// mask-and-compares on the one word.
        keys: Vec<u64>,
        /// Payloads, parallel to `keys`.
        seqs: Vec<RtSeq>,
        /// LRU stamps, parallel to `keys`: every reference that the
        /// move-to-MRU formulation would rotate instead records the
        /// tick it happened at, and the fill victim is the minimum
        /// stamp in the set. Relative stamp order within a set is
        /// exactly list order, so hit/miss behavior is bit-identical —
        /// but a touch is one store instead of a memmove, entries never
        /// move between slots, and a slot index therefore stays valid
        /// for as long as no fill or invalidation intervenes (the basis
        /// of the slot-replay API the simulator's block executor uses).
        stamps: Vec<u64>,
        /// Monotonic reference tick feeding `stamps`.
        clock: u64,
        num_sets: usize,
        assoc: usize,
        block: usize,
    },
    Perfect {
        map: HashMap<(ReplacementId, u8), RtSeq>,
        block: usize,
    },
}

/// Slot sentinel for RT organizations without addressable slots (the
/// perfect RT): the reference is a hit, but there is nothing to stamp.
pub const RT_NO_SLOT: u32 = u32::MAX;

/// The key-word tag (everything above the spec-count byte).
#[inline]
fn rt_tag(id: ReplacementId, base: u8) -> u64 {
    (id as u64) << 16 | (base as u64) << 8
}

impl RtStore {
    fn new(config: &EngineConfig) -> RtStore {
        let block = config.rt_block.max(1) as usize;
        let cache = |num_sets: usize, assoc: usize| RtStore::Cache {
            keys: vec![0; num_sets * assoc],
            seqs: vec![RtSeq::default(); num_sets * assoc],
            stamps: vec![0; num_sets * assoc],
            clock: 0,
            num_sets,
            assoc,
            block,
        };
        match config.rt_org {
            RtOrganization::Perfect => RtStore::Perfect {
                map: HashMap::new(),
                block,
            },
            RtOrganization::DirectMapped => cache((config.rt_entries / block).max(1), 1),
            RtOrganization::SetAssociative(n) => {
                let n = n.max(1) as usize;
                cache((config.rt_entries / (n * block)).max(1), n)
            }
        }
    }

    fn block(&self) -> usize {
        match self {
            RtStore::Cache { block, .. } | RtStore::Perfect { block, .. } => *block,
        }
    }

    fn base_of(&self, disepc: u8) -> u8 {
        let block = self.block() as u8;
        // `block` is a runtime value, so the compiler cannot remove the
        // division — and the ubiquitous 1-spec-per-entry geometry would
        // pay it on every RT reference.
        if block == 1 {
            disepc
        } else {
            disepc - disepc % block
        }
    }

    fn set_index(num_sets: usize, id: ReplacementId, base: u8) -> usize {
        let h = (id as usize).wrapping_mul(37).wrapping_add(base as usize);
        // `num_sets` is a runtime value, so the compiler cannot strength-
        // reduce the modulo on its own — and every RT reference on the
        // simulator's hot path lands here. Power-of-two set counts (the
        // paper's geometries all are) take the mask; the remainder is
        // identical either way.
        if num_sets.is_power_of_two() {
            h & (num_sets - 1)
        } else {
            h % num_sets
        }
    }

    /// Re-references `(id, disepc)` with exactly the LRU effect of
    /// [`RtStore::get`], without touching the spec. Returns whether the
    /// entry is resident.
    #[inline]
    fn touch(&mut self, id: ReplacementId, disepc: u8) -> bool {
        self.touch_slot(id, disepc).is_some()
    }

    /// [`RtStore::touch`], additionally reporting *where* the entry
    /// lives: a slot index that stays valid (same entry, still resident)
    /// until the next fill or invalidation, or [`RT_NO_SLOT`] for the
    /// perfect RT (hit, but nothing to stamp). `None` on a miss.
    #[inline]
    fn touch_slot(&mut self, id: ReplacementId, disepc: u8) -> Option<u32> {
        let base = self.base_of(disepc);
        let off = (disepc - base) as u64;
        match self {
            RtStore::Perfect { map, .. } => map
                .get(&(id, base))
                .is_some_and(|e| (off as usize) < e.specs.len())
                .then_some(RT_NO_SLOT),
            RtStore::Cache {
                keys,
                stamps,
                clock,
                num_sets,
                assoc,
                ..
            } => {
                let s = Self::set_index(*num_sets, id, base) * *assoc;
                let tag = rt_tag(id, base);
                for i in s..s + *assoc {
                    let k = keys[i];
                    if k & !0xFF == tag && k & 0xFF > off {
                        *clock += 1;
                        stamps[i] = *clock;
                        return Some(i as u32);
                    }
                }
                None
            }
        }
    }

    /// Re-references `(id, disepc)` through a slot index previously
    /// returned by [`RtStore::touch_slot`], verifying the slot still
    /// holds the entry before stamping it. The packed key *is* complete
    /// identity (tag + resident spec count), so one compare replaces the
    /// whole set search: a matching key means the set's unique match for
    /// this tag (inserts never duplicate a tag within a set) is exactly
    /// this slot, and the stamp has the same LRU effect as the full
    /// touch. Returns `false` — no state changed — when the slot was
    /// since refilled with something else; the caller re-searches.
    #[inline]
    fn stamp_verified(&mut self, slot: u32, id: ReplacementId, disepc: u8) -> bool {
        let base = self.base_of(disepc);
        let off = (disepc - base) as u64;
        match self {
            // Never reached: the perfect RT reports `RT_NO_SLOT`, which
            // executors cannot record (it encodes to "no plan").
            RtStore::Perfect { .. } => false,
            RtStore::Cache { keys, stamps, clock, .. } => {
                let k = keys[slot as usize];
                if k & !0xFF == rt_tag(id, base) && k & 0xFF > off {
                    *clock += 1;
                    stamps[slot as usize] = *clock;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Read-only half of [`RtStore::stamp_verified`]: does `slot` still
    /// hold `(id, disepc)`'s block? No LRU effect — callers that verify a
    /// whole group up front pair this with [`RtStore::stamp_slot`] per
    /// executed µop so the stamp order matches the per-µop path exactly.
    #[inline]
    fn slot_holds(&self, slot: u32, id: ReplacementId, disepc: u8) -> bool {
        let base = self.base_of(disepc);
        let off = (disepc - base) as u64;
        match self {
            RtStore::Perfect { .. } => false,
            RtStore::Cache { keys, .. } => {
                let k = keys[slot as usize];
                k & !0xFF == rt_tag(id, base) && k & 0xFF > off
            }
        }
    }

    /// Stamp half of [`RtStore::stamp_verified`]: re-references `slot`
    /// without re-checking its key. Sound only when [`RtStore::slot_holds`]
    /// was observed and no fill or invalidation has intervened (stamps
    /// never change keys).
    #[inline]
    fn stamp_slot(&mut self, slot: u32) {
        match self {
            RtStore::Perfect { .. } => {}
            RtStore::Cache { stamps, clock, .. } => {
                *clock += 1;
                stamps[slot as usize] = *clock;
            }
        }
    }

    /// The spec at `disepc`, if its block is resident. Updates LRU state.
    fn get(&mut self, id: ReplacementId, disepc: u8) -> Option<(&InstSpec, u8)> {
        let base = self.base_of(disepc);
        let off = (disepc - base) as usize;
        match self {
            RtStore::Perfect { map, .. } => {
                let e = map.get(&(id, base))?;
                Some((e.specs.get(off)?, e.seq_len))
            }
            RtStore::Cache {
                keys,
                seqs,
                stamps,
                clock,
                num_sets,
                assoc,
                ..
            } => {
                let s = Self::set_index(*num_sets, id, base) * *assoc;
                let tag = rt_tag(id, base);
                // Tag match only — a resident block refreshes its LRU
                // stamp even when `off` overshoots its specs, exactly as
                // the move-to-MRU formulation behaved. The low-byte check
                // keeps `id 0, base 0` (tag 0) from matching empty
                // slots: live keys always carry a nonzero spec count.
                let i = (s..s + *assoc)
                    .find(|&i| keys[i] & !0xFF == tag && keys[i] & 0xFF != 0)?;
                *clock += 1;
                stamps[i] = *clock;
                let e = &seqs[i];
                Some((e.specs.get(off)?, e.seq_len))
            }
        }
    }

    fn contains(&self, id: ReplacementId, disepc: u8) -> bool {
        let base = self.base_of(disepc);
        let off = (disepc - base) as u64;
        match self {
            RtStore::Perfect { map, .. } => map
                .get(&(id, base))
                .is_some_and(|e| (off as usize) < e.specs.len()),
            RtStore::Cache {
                keys,
                num_sets,
                assoc,
                ..
            } => {
                let s = Self::set_index(*num_sets, id, base) * *assoc;
                let tag = rt_tag(id, base);
                keys[s..s + *assoc]
                    .iter()
                    .any(|&k| k & !0xFF == tag && k & 0xFF > off)
            }
        }
    }

    fn invalidate(&mut self, id: ReplacementId) {
        match self {
            RtStore::Perfect { map, .. } => map.retain(|(eid, _), _| *eid != id),
            RtStore::Cache {
                keys, seqs, stamps, ..
            } => {
                for i in 0..keys.len() {
                    if keys[i] != 0 && (keys[i] >> 16) as ReplacementId == id {
                        keys[i] = 0;
                        seqs[i] = RtSeq::default();
                        stamps[i] = 0;
                    }
                }
            }
        }
    }

    /// Whether, given `tags` — every `(id, base)` key a fill could
    /// insert under the current production set — no insertion can ever
    /// evict a live entry: each set has at least as many ways as the
    /// distinct tags (potential or currently resident) that map to it.
    /// Fills then always land on their own tag or a free slot, the LRU
    /// victim choice is never made, and a slot that once held an entry
    /// holds it until the next invalidation (see
    /// [`DiseEngine::rt_static`]). Trivially true for the perfect RT.
    fn conflict_free(&self, tags: &[(ReplacementId, u8)]) -> bool {
        match self {
            RtStore::Perfect { .. } => true,
            RtStore::Cache {
                keys,
                num_sets,
                assoc,
                ..
            } => {
                let mut sets: Vec<Vec<u64>> = vec![Vec::new(); *num_sets];
                for (i, &k) in keys.iter().enumerate() {
                    if k != 0 && !sets[i / *assoc].contains(&(k & !0xFF)) {
                        sets[i / *assoc].push(k & !0xFF);
                    }
                }
                for &(id, base) in tags {
                    let set = &mut sets[Self::set_index(*num_sets, id, base)];
                    if !set.contains(&rt_tag(id, base)) {
                        set.push(rt_tag(id, base));
                    }
                }
                sets.iter().all(|s| s.len() <= *assoc)
            }
        }
    }

    /// Inserts a whole sequence, one block entry per `block` specs.
    fn insert_sequence(&mut self, id: ReplacementId, seq_len: u8, specs: &[InstSpec]) {
        let block = self.block();
        for (chunk_ix, chunk) in specs.chunks(block).enumerate() {
            let base = (chunk_ix * block) as u8;
            let seq = RtSeq {
                seq_len,
                specs: chunk.to_vec(),
            };
            match self {
                RtStore::Perfect { map, .. } => {
                    map.insert((id, base), seq);
                }
                RtStore::Cache {
                    keys,
                    seqs,
                    stamps,
                    clock,
                    num_sets,
                    assoc,
                    ..
                } => {
                    let s = Self::set_index(*num_sets, id, base) * *assoc;
                    let tag = rt_tag(id, base);
                    // Slot choice, in the order the list formulation
                    // implied: the same tag if present (replace), else
                    // any free slot, else the LRU victim (minimum
                    // stamp). The new entry lands at MRU via a fresh
                    // stamp.
                    let i = (s..s + *assoc)
                        .find(|&i| keys[i] & !0xFF == tag && keys[i] & 0xFF != 0)
                        .or_else(|| (s..s + *assoc).find(|&i| keys[i] == 0))
                        .unwrap_or_else(|| {
                            (s..s + *assoc)
                                .min_by_key(|&i| stamps[i])
                                .expect("assoc >= 1")
                        });
                    keys[i] = tag | seq.specs.len() as u64;
                    seqs[i] = seq;
                    *clock += 1;
                    stamps[i] = *clock;
                }
            }
        }
    }
}

/// Number of slots in the direct-mapped expansion memo. Sized to cover
/// the static footprint of a large benchmark (tens of thousands of
/// distinct instruction words) — at ~32 bytes a slot the table stays
/// well under a megabyte while keeping conflict misses rare.
const EXP_MEMO_SLOTS: usize = 32768;
/// Number of slots in the direct-mapped instantiation memo.
const INST_MEMO_SLOTS: usize = 32768;

/// Instantiation-memo key. The trigger's raw word stands in for its
/// decoded fields; `trigger_pc` must be part of the key because
/// PC-relative immediate directives (`T.PC`, absolute-target rewriting)
/// instantiate differently at different trigger addresses.
type InstMemoKey = (ReplacementId, u8, u32, u64);

/// Parses a `DISE_ACF_ARENA` setting: `"on"` enables the dense
/// replacement-sequence arena (fixed-stride pre-instantiated slots — the
/// expansion fast path), `"off"` disables it (every instantiation walks
/// the `ReplacementSpec` directives).
///
/// # Errors
///
/// Any other value is rejected with an actionable message.
pub fn parse_acf_arena(v: &str) -> std::result::Result<bool, String> {
    match v {
        "on" => Ok(true),
        "off" => Ok(false),
        _ => Err(format!(
            "DISE_ACF_ARENA must be \"on\" or \"off\", got {v:?}; unset it to use the default (on)"
        )),
    }
}

/// The process-wide `DISE_ACF_ARENA` default (read once). Panics with the
/// [`parse_acf_arena`] message on an invalid setting — a silently ignored
/// typo would miscredit every benchmark run after it. The arena is a pure
/// speed device: results and statistics are bit-identical either way.
pub fn acf_arena_env() -> bool {
    static ENV_GATE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENV_GATE.get_or_init(|| match std::env::var("DISE_ACF_ARENA") {
        Ok(v) => match parse_acf_arena(&v) {
            Ok(enabled) => enabled,
            Err(why) => panic!("{why}"),
        },
        Err(_) => true,
    })
}

/// Maximum sequence length (in replacement instructions) the dense arena
/// holds. Longer sequences — none of the shipped ACFs produce any — fall
/// back to the directive-walking path.
const ARENA_MAX_LEN: usize = 8;

/// A deferred (trigger-dependent) field of an arena-baked replacement
/// instruction. Literal fields are pre-resolved into the arena at build
/// time; only these survive to instantiation.
#[derive(Debug, Clone, Copy)]
enum ArenaFixup {
    /// `T.INSN` — the whole instruction is the trigger.
    Whole,
    /// `T.OP`.
    Op,
    /// Trigger-dependent `ra` field.
    Ra(RegDirective),
    /// Trigger-dependent `rb` field.
    Rb(RegDirective),
    /// Trigger-dependent `rc` field.
    Rc(RegDirective),
    /// Trigger-dependent immediate.
    Imm(ImmDirective),
}

/// Dense replacement-sequence arena: every installed sequence of at most
/// [`ARENA_MAX_LEN`] instructions, *post-composition*, laid out
/// contiguously in fixed-stride slots with every literal directive
/// pre-resolved. Expanding a codeword is then one bounds-checked slice
/// copy plus a (usually short) fixup list patching the trigger-dependent
/// fields in place — instead of walking `ReplacementSpec` directive
/// enums per field per µop.
///
/// Built from [`Controller::resolve_spec`], so compose-on-miss
/// configurations bake the *composed* sequence (identical to what RT
/// fills install under the same id). Rebuilt on runtime installs; RT and
/// PT state never affect it (it caches architectural content only).
/// Instantiations that could error return `None` instead — callers fall
/// back to the directive walk, which reproduces the identical error.
#[derive(Debug, Default)]
struct SpecArena {
    /// Slot stride in instructions (the longest baked sequence).
    stride: usize,
    /// Baked sequence ids, sorted for binary search.
    ids: Vec<ReplacementId>,
    /// Per row: sequence length.
    lens: Vec<u8>,
    /// `ids.len() * stride` pre-instantiated instructions; row `r`'s
    /// sequence occupies `ops[r*stride..r*stride + lens[r]]`.
    ops: Vec<Inst>,
    /// Per row: range into `fixups`.
    fixup_ranges: Vec<(u32, u32)>,
    /// `(disepc, fixup)` pairs, grouped by row, ordered by disepc then
    /// field order.
    fixups: Vec<(u8, ArenaFixup)>,
}

impl SpecArena {
    /// Bakes every eligible sequence of `controller`'s production set.
    fn build(controller: &Controller) -> SpecArena {
        let mut ids: Vec<ReplacementId> = controller
            .productions()
            .seqs()
            .map(|(id, _)| id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let resolved: Vec<(ReplacementId, std::borrow::Cow<'_, crate::spec::ReplacementSpec>)> =
            ids.into_iter()
                .filter_map(|id| {
                    let (spec, _) = controller.resolve_spec(id).ok()?;
                    ((1..=ARENA_MAX_LEN).contains(&spec.len())).then_some((id, spec))
                })
                .collect();
        let stride = resolved.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
        let mut arena = SpecArena {
            stride,
            ..SpecArena::default()
        };
        for (id, spec) in &resolved {
            let fix_start = arena.fixups.len() as u32;
            for (d, s) in spec.insts.iter().enumerate() {
                let d = d as u8;
                let baked = match s {
                    InstSpec::Trigger => {
                        arena.fixups.push((d, ArenaFixup::Whole));
                        Inst::nop()
                    }
                    InstSpec::Templated {
                        op,
                        ra,
                        rb,
                        rc,
                        imm,
                        uses_lit,
                        dise_branch,
                    } => {
                        let mut inst = Inst::nop();
                        inst.uses_lit = *uses_lit;
                        inst.dise_branch = *dise_branch;
                        match op {
                            OpDirective::Literal(o) => inst.op = *o,
                            OpDirective::Trigger => arena.fixups.push((d, ArenaFixup::Op)),
                        }
                        match ra {
                            RegDirective::Literal(r) => inst.ra = *r,
                            dir => arena.fixups.push((d, ArenaFixup::Ra(*dir))),
                        }
                        match rb {
                            RegDirective::Literal(r) => inst.rb = *r,
                            dir => arena.fixups.push((d, ArenaFixup::Rb(*dir))),
                        }
                        match rc {
                            RegDirective::Literal(r) => inst.rc = *r,
                            dir => arena.fixups.push((d, ArenaFixup::Rc(*dir))),
                        }
                        match imm {
                            ImmDirective::Literal(v) => inst.imm = *v,
                            dir => arena.fixups.push((d, ArenaFixup::Imm(*dir))),
                        }
                        inst
                    }
                };
                arena.ops.push(baked);
            }
            arena
                .ops
                .resize(arena.ops.len() + stride - spec.len(), Inst::nop());
            arena.ids.push(*id);
            arena.lens.push(spec.len() as u8);
            arena
                .fixup_ranges
                .push((fix_start, arena.fixups.len() as u32));
        }
        arena
    }

    /// The arena row for `id`, if baked.
    #[inline]
    fn row(&self, id: ReplacementId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Instantiates replacement `disepc` of sequence `id` against
    /// `trigger`. `None` when the sequence is not baked, `disepc` is out
    /// of range, or a fixup cannot resolve — callers fall back to the
    /// directive-walking path, which reproduces the identical error.
    #[inline]
    fn instantiate(
        &self,
        id: ReplacementId,
        disepc: u8,
        trigger: &Inst,
        trigger_pc: u64,
    ) -> Option<Inst> {
        let row = self.row(id)?;
        if disepc >= self.lens[row] {
            return None;
        }
        let mut inst = self.ops[row * self.stride + disepc as usize];
        let (s, e) = self.fixup_ranges[row];
        for &(d, fix) in &self.fixups[s as usize..e as usize] {
            if d != disepc {
                continue;
            }
            match fix {
                ArenaFixup::Whole => inst = *trigger,
                ArenaFixup::Op => inst.op = trigger.op,
                ArenaFixup::Ra(dir) => inst.ra = dir.resolve(trigger).ok()?,
                ArenaFixup::Rb(dir) => inst.rb = dir.resolve(trigger).ok()?,
                ArenaFixup::Rc(dir) => inst.rc = dir.resolve(trigger).ok()?,
                ArenaFixup::Imm(dir) => inst.imm = dir.resolve(trigger, trigger_pc).ok()?,
            }
        }
        Some(inst)
    }

    /// Instantiates the whole sequence `id` into `out` — one slice copy
    /// of the row followed by the in-place fixups ("memcpy-shaped"
    /// expansion). Returns the sequence length, or `None` under the same
    /// fallback conditions as [`SpecArena::instantiate`] (with `out`
    /// restored to its original length).
    fn instantiate_span(
        &self,
        id: ReplacementId,
        trigger: &Inst,
        trigger_pc: u64,
        out: &mut Vec<Inst>,
    ) -> Option<u8> {
        let row = self.row(id)?;
        let len = self.lens[row] as usize;
        let mark = out.len();
        let at = row * self.stride;
        out.extend_from_slice(&self.ops[at..at + len]);
        let (s, e) = self.fixup_ranges[row];
        for &(d, fix) in &self.fixups[s as usize..e as usize] {
            let inst = &mut out[mark + d as usize];
            let ok = match fix {
                ArenaFixup::Whole => {
                    *inst = *trigger;
                    true
                }
                ArenaFixup::Op => {
                    inst.op = trigger.op;
                    true
                }
                ArenaFixup::Ra(dir) => dir.resolve(trigger).map(|r| inst.ra = r).is_ok(),
                ArenaFixup::Rb(dir) => dir.resolve(trigger).map(|r| inst.rb = r).is_ok(),
                ArenaFixup::Rc(dir) => dir.resolve(trigger).map(|r| inst.rc = r).is_ok(),
                ArenaFixup::Imm(dir) => dir
                    .resolve(trigger, trigger_pc)
                    .map(|v| inst.imm = v)
                    .is_ok(),
            };
            if !ok {
                out.truncate(mark);
                return None;
            }
        }
        Some(len as u8)
    }
}

/// The DISE engine: PT + RT + pattern-counter table + instantiation logic,
/// fed by a [`Controller`] that owns the architectural production set.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct DiseEngine {
    config: EngineConfig,
    controller: Controller,
    /// Indices (into the controller's rule list) of PT-resident rules,
    /// LRU-first at the *end* (most recently used last? no: MRU-first at
    /// front).
    pt_resident: Vec<usize>,
    /// Pattern-counter table: per opcode number, (active, resident).
    counters: [(u16, u16); 64],
    /// Static fast-path match index: per opcode number, the indices of
    /// *all* rules whose patterns cover that opcode (not just resident
    /// ones). Only consulted when the pattern counters show every
    /// covering rule resident (`active == resident`), which is the only
    /// state in which `inspect` matches; the extra filter the old
    /// residency-tracked index provided was therefore dead. Depends only
    /// on the production set, so sweep cells over the same productions
    /// share one copy by `Arc`; runtime installs rebuild a private copy.
    op_rules: Arc<Vec<Vec<usize>>>,
    /// Process-shared read-only frontend layer (match index + memo of
    /// architectural expansion outcomes per raw word), if this engine was
    /// attached to one. Probed before the private `exp_memo`; detached on
    /// runtime production installs (the architectural set diverges from
    /// the shared snapshot).
    shared: Option<Arc<SharedFrontend>>,
    /// Direct-mapped memo of steady-state `inspect` outcomes, keyed by the
    /// trigger's raw instruction word. Caches only `None` and `Expand`
    /// (misses and faults mutate or depend on transient table state).
    /// Invalidated on installs, context switches, and PT/RT fills.
    /// Allocated lazily (empty until the first store): engines attached to
    /// a shared frontend rarely need it at all.
    exp_memo: Box<[Option<(u32, Expansion)>]>,
    /// Direct-mapped memo of `spec.instantiate` results, keyed by
    /// `(id, disepc, trigger word, trigger pc)`. Same invalidation rules;
    /// also lazily allocated. Always private — instantiations depend on
    /// trigger PC and fields, which don't amortize across cells.
    inst_memo: Box<[Option<(InstMemoKey, Inst)>]>,
    rt: RtStore,
    /// Dense pre-instantiated replacement arena (see [`SpecArena`]);
    /// empty when `DISE_ACF_ARENA=off`, in which case every lookup misses
    /// and instantiation walks the directives.
    arena: SpecArena,
    stats: EngineStats,
    /// Monotonic invalidation epoch for outcome-holding caches *outside*
    /// the engine (the simulator's translated-block cache). Bumped by
    /// every event after which a previously computed [`BlockOutcome`] or
    /// baked instantiation may be stale: PT fills, runtime production
    /// installs, and context switches. RT fills deliberately do *not*
    /// bump it — they change miss timing, not architectural outcomes,
    /// and external caches replay RT references per use (see
    /// [`DiseEngine::block_expand_hit`]).
    generation: u64,
    /// Cached [`RtStore::conflict_free`] verdict over the current
    /// production set (see [`DiseEngine::rt_static`]). Recomputed
    /// whenever the production set or the resident RT contents can
    /// change other than by fills of that same set's sequences.
    rt_static: bool,
}

impl DiseEngine {
    /// Creates an engine with an empty production set.
    pub fn new(config: EngineConfig) -> DiseEngine {
        DiseEngine::with_controller(config, Controller::new(ProductionSet::new()))
    }

    /// Creates an engine over `productions`.
    ///
    /// # Errors
    ///
    /// Fails if any installed sequence is structurally invalid.
    pub fn with_productions(
        config: EngineConfig,
        productions: ProductionSet,
    ) -> Result<DiseEngine> {
        for (_, spec) in productions.seqs() {
            spec.validate()?;
        }
        Ok(DiseEngine::with_controller(
            config,
            Controller::new(productions),
        ))
    }

    /// Creates an engine with an explicit controller (needed for
    /// compose-on-miss configurations, Figure 8).
    pub fn with_controller(config: EngineConfig, controller: Controller) -> DiseEngine {
        let mut counters = [(0u16, 0u16); 64];
        for rule in controller.productions().rules() {
            for op in rule.pattern.opcodes() {
                counters[op.number() as usize].0 += 1;
            }
        }
        let op_rules = Arc::new(frontend::build_op_rules(controller.productions().rules()));
        let arena = if acf_arena_env() {
            SpecArena::build(&controller)
        } else {
            SpecArena::default()
        };
        let mut engine = DiseEngine {
            rt: RtStore::new(&config),
            config,
            controller,
            pt_resident: Vec::new(),
            counters,
            op_rules,
            shared: None,
            exp_memo: Box::default(),
            inst_memo: Box::default(),
            arena,
            stats: EngineStats::default(),
            generation: 0,
            rt_static: false,
        };
        engine.recompute_rt_static();
        engine
    }

    /// True when the RT is *statically conflict-free* under the current
    /// production set: every `(id, base)` key a fill could ever insert
    /// maps to a set with at least as many ways as distinct tags, so no
    /// fill can evict a live entry within the current generation (the
    /// only other RT mutations — invalidations and context switches —
    /// bump the generation and recompute this flag). Block executors
    /// holding a recorded, generation-checked RT slot may then skip
    /// both the key re-verification (the slot provably still holds the
    /// entry) and the LRU stamps (victimless caches never read them) —
    /// results and statistics stay bit-identical.
    #[inline]
    pub fn rt_static(&self) -> bool {
        self.rt_static
    }

    /// Recomputes [`DiseEngine::rt_static`]: enumerates every RT key the
    /// current production set can fill (one per `rt_block` chunk of each
    /// resolvable sequence) and asks the store whether they — plus
    /// whatever is already resident — fit without evictions.
    fn recompute_rt_static(&mut self) {
        let block = self.rt.block();
        let mut ids: Vec<ReplacementId> = self
            .controller
            .productions()
            .seqs()
            .map(|(id, _)| id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        let mut tags = Vec::new();
        for id in ids {
            let Ok((spec, _)) = self.controller.resolve_spec(id) else {
                continue;
            };
            // An unvalidatable geometry (bases past the 8-bit DISEPC)
            // can never be declared static.
            if spec.len() > 256 {
                self.rt_static = false;
                return;
            }
            for base in (0..spec.len()).step_by(block) {
                tags.push((id, base as u8));
            }
        }
        self.rt_static = self.rt.conflict_free(&tags);
    }

    /// Rebuilds the replacement arena after a runtime production install
    /// (the architectural set changed; RT/PT state is irrelevant to it).
    fn rebuild_arena(&mut self) {
        if acf_arena_env() {
            self.arena = SpecArena::build(&self.controller);
        }
    }

    /// Attaches a process-shared frontend built over this engine's
    /// production set (see [`SharedFrontend`]). The engine adopts the
    /// shared match index and probes the shared architectural memo before
    /// its private one. Purely constructional — architectural results and
    /// statistics are bit-identical with or without a shared frontend.
    pub fn set_shared_frontend(&mut self, shared: Arc<SharedFrontend>) {
        debug_assert_eq!(
            **shared.op_rules(),
            frontend::build_op_rules(self.controller.productions().rules()),
            "shared frontend was built over a different production set"
        );
        self.op_rules = Arc::clone(shared.op_rules());
        self.shared = Some(shared);
    }

    /// The attached shared frontend, if any.
    pub fn shared_frontend(&self) -> Option<&Arc<SharedFrontend>> {
        self.shared.as_ref()
    }

    /// Drops the shared frontend and rebuilds a private match index.
    /// Called when a runtime install changes the production set out from
    /// under the shared architectural snapshot.
    fn detach_shared(&mut self) {
        self.shared = None;
        self.op_rules = Arc::new(frontend::build_op_rules(
            self.controller.productions().rules(),
        ));
    }

    /// The private expansion memo, allocated on first use.
    fn exp_memo_mut(&mut self) -> &mut [Option<(u32, Expansion)>] {
        if self.exp_memo.is_empty() {
            self.exp_memo = vec![None; EXP_MEMO_SLOTS].into_boxed_slice();
        }
        &mut self.exp_memo
    }

    /// The private instantiation memo, allocated on first use.
    fn inst_memo_mut(&mut self) -> &mut [Option<(InstMemoKey, Inst)>] {
        if self.inst_memo.is_empty() {
            self.inst_memo = vec![None; INST_MEMO_SLOTS].into_boxed_slice();
        }
        &mut self.inst_memo
    }

    #[inline]
    fn exp_slot(raw: u32) -> usize {
        let bits = EXP_MEMO_SLOTS.trailing_zeros();
        (raw.wrapping_mul(0x9E37_79B9) >> (32 - bits)) as usize
    }

    #[inline]
    fn inst_slot(key: &InstMemoKey) -> usize {
        let (id, disepc, raw, pc) = *key;
        let h = (id as u64 ^ ((disepc as u64) << 32))
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (raw as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ pc.rotate_left(17);
        (h >> 48) as usize % INST_MEMO_SLOTS
    }

    /// Drops every memoized outcome. Called on any event that could change
    /// an inspection or instantiation result *or* the RT's miss behavior:
    /// production installs, context switches, and PT/RT fills (fills can
    /// evict, so a memo hit after one could skip a miss the slow path
    /// would model).
    fn invalidate_memos(&mut self) {
        self.exp_memo.fill(None);
        self.inst_memo.fill(None);
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Accumulated miss-stall cycles (hot-path accessor: avoids copying
    /// the whole [`EngineStats`] when only the stall delta is needed).
    #[inline]
    pub fn stall_cycles(&self) -> u64 {
        self.stats.stall_cycles
    }

    /// Resets statistics (not table contents).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// The controller (and through it the architectural production set).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// The invalidation epoch for externally cached inspection outcomes
    /// (see the `generation` field). A block translated under generation
    /// `g` is valid to execute exactly while `generation() == g`.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The architectural inspection outcome for `inst`, computed without
    /// mutating any table, memo, or counter — what a block translator may
    /// bake under the current [`DiseEngine::generation`]. Mirrors
    /// [`DiseEngine::inspect`]'s decision exactly: reaching the match
    /// requires `active == resident` for the opcode, in which state the
    /// static per-opcode rule index and the resident-PT scan select the
    /// same winner (see the comment in `inspect`).
    pub fn block_outcome(&self, inst: &Inst) -> BlockOutcome {
        let (active, resident) = self.counters[inst.op.number() as usize];
        if active != resident {
            return BlockOutcome::NotReady;
        }
        if active == 0 {
            return BlockOutcome::Pass;
        }
        let rules = self.controller.productions().rules();
        let best = self.op_rules[inst.op.number() as usize]
            .iter()
            .map(|i| (*i, &rules[*i]))
            .filter(|(_, r)| r.pattern.matches(inst))
            .max_by_key(|(i, r)| (r.priority, r.pattern.specificity(), usize::MAX - *i));
        let Some((_, rule)) = best else {
            return BlockOutcome::Pass;
        };
        let id = match rule.seq {
            crate::production::SeqRef::Fixed(id) => id,
            crate::production::SeqRef::FromTag { base } => base + inst.codeword_tag() as u32,
        };
        match self.controller.resolve_spec(id) {
            Ok((spec, _)) => BlockOutcome::Expand {
                id,
                len: spec.len() as u8,
            },
            Err(_) => BlockOutcome::Fault,
        }
    }

    /// Pure instantiation of replacement instruction `disepc` of sequence
    /// `id` against `trigger` — no RT reference, no fill, no statistics.
    /// Instantiation is a function of `(id, disepc, trigger, trigger_pc)`
    /// only (the instantiation memo's key is exactly that), so a block
    /// translator may bake the result.
    ///
    /// # Errors
    ///
    /// Fails if `id` has no installed sequence, `disepc` is out of range,
    /// or the spec does not instantiate against this trigger.
    pub fn instantiate_block(
        &self,
        id: ReplacementId,
        disepc: u8,
        trigger: &Inst,
        trigger_pc: u64,
    ) -> Result<Inst> {
        if let Some(inst) = self.arena.instantiate(id, disepc, trigger, trigger_pc) {
            return Ok(inst);
        }
        let (spec, _) = self.controller.resolve_spec(id)?;
        spec.insts
            .get(disepc as usize)
            .ok_or(CoreError::UnknownSequence(id))?
            .instantiate(trigger, trigger_pc)
    }

    /// Whole-sequence [`DiseEngine::instantiate_block`]: appends sequence
    /// `id` instantiated against `trigger` to `out` with one arena slice
    /// copy plus in-place fixups, returning its length. `None` when the
    /// sequence is not arena-baked (arena disabled, over-long, or a fixup
    /// that cannot resolve) — callers fall back to the per-µop path.
    pub fn instantiate_block_span(
        &self,
        id: ReplacementId,
        trigger: &Inst,
        trigger_pc: u64,
        out: &mut Vec<Inst>,
    ) -> Option<u8> {
        self.arena.instantiate_span(id, trigger, trigger_pc, out)
    }

    /// Replays the inspection a baked `Expand` outcome skipped: the RT
    /// reference for `(id, 0)` with its LRU effect, plus the inspected /
    /// expansion statistics the slow path would have accumulated. Returns
    /// `false` (leaving all statistics untouched) when the sequence head
    /// is no longer RT-resident — the caller must then take the live
    /// [`DiseEngine::inspect_decoded`] path, which models the refill.
    pub fn block_expand_hit(&mut self, id: ReplacementId, len: u8) -> bool {
        if !self.rt.touch(id, 0) {
            return false;
        }
        self.stats.inspected += 1;
        self.stats.expansions += 1;
        self.stats.replacement_insts += len as u64;
        true
    }

    /// Replays the RT reference a baked replacement instruction skipped:
    /// the `contains` + `get` pair of [`DiseEngine::fetch_replacement`]
    /// collapses to one LRU touch of `(id, disepc)`. Returns `false` when
    /// the entry was evicted since the block was translated — the caller
    /// must then take the live fetch path, which models the refill miss.
    #[inline]
    pub fn block_replacement_hit(&mut self, id: ReplacementId, disepc: u8) -> bool {
        self.rt.touch(id, disepc)
    }

    /// [`DiseEngine::block_expand_hit`], additionally reporting *which*
    /// physical RT slot the entry reference touched (or
    /// [`RT_NO_SLOT`] on a perfect RT, which has no slots to stamp).
    /// `None` means a miss: no statistics were accumulated and the caller
    /// must take the live inspect path. The returned slot may be replayed
    /// via [`DiseEngine::block_expand_stamp`], which re-verifies it
    /// against the slot's key on every use.
    #[inline]
    pub fn block_expand_hit_slot(&mut self, id: ReplacementId, len: u8) -> Option<u32> {
        let slot = self.rt.touch_slot(id, 0)?;
        self.stats.inspected += 1;
        self.stats.expansions += 1;
        self.stats.replacement_insts += len as u64;
        Some(slot)
    }

    /// [`DiseEngine::block_replacement_hit`], additionally reporting the
    /// touched slot under the same contract as
    /// [`DiseEngine::block_expand_hit_slot`].
    #[inline]
    pub fn block_replacement_hit_slot(&mut self, id: ReplacementId, disepc: u8) -> Option<u32> {
        self.rt.touch_slot(id, disepc)
    }

    /// Replays [`DiseEngine::block_expand_hit`] through a slot index
    /// previously obtained from [`DiseEngine::block_expand_hit_slot`]:
    /// one verify-compare and an indexed LRU stamp plus the inspection
    /// statistics, with no set search. The verify makes cached slots
    /// self-validating — a fill that replaced the slot simply fails the
    /// compare (returning `false`, no state changed) and the caller
    /// falls back to the searching hit path.
    #[inline]
    pub fn block_expand_stamp(&mut self, slot: u32, id: ReplacementId, len: u8) -> bool {
        if !self.rt.stamp_verified(slot, id, 0) {
            return false;
        }
        self.stats.inspected += 1;
        self.stats.expansions += 1;
        self.stats.replacement_insts += len as u64;
        true
    }

    /// Replays [`DiseEngine::block_replacement_hit`] through a cached
    /// slot index; same self-validating contract as
    /// [`DiseEngine::block_expand_stamp`].
    #[inline]
    pub fn block_replacement_stamp(&mut self, slot: u32, id: ReplacementId, disepc: u8) -> bool {
        self.rt.stamp_verified(slot, id, disepc)
    }

    /// Read-only verification that every recorded touch plan of a
    /// straight expand group still holds its RT entry: `plans[d]` must be
    /// nonzero and slot `plans[d] - 1` must hold `(id, d)`'s block. No
    /// LRU effect — the caller then replays the reference string with
    /// [`DiseEngine::block_group_enter`] + [`DiseEngine::block_stamp_unchecked`]
    /// in the per-µop order. Sound because nothing between the verify and
    /// the stamps can change RT keys: stamps only move LRU state, and
    /// straight groups execute no instruction that reaches the engine.
    #[inline]
    pub fn block_group_verify(&self, id: ReplacementId, plans: &[u32]) -> bool {
        plans
            .iter()
            .enumerate()
            .all(|(d, &p)| p != 0 && self.rt.slot_holds(p - 1, id, d as u8))
    }

    /// Read-only entry-only verification (solo groups skip the per-µop
    /// replay, so only `(id, 0)`'s plan needs to hold).
    #[inline]
    pub fn block_entry_holds(&self, slot: u32, id: ReplacementId) -> bool {
        self.rt.slot_holds(slot, id, 0)
    }

    /// Entry half of a verified group's replay: the group-entry
    /// inspection statistics of [`DiseEngine::block_expand_stamp`] plus
    /// the entry slot's LRU stamp. Must follow a successful
    /// [`DiseEngine::block_group_verify`] / [`DiseEngine::block_entry_holds`].
    #[inline]
    pub fn block_group_enter(&mut self, slot: u32, len: u8) {
        self.rt.stamp_slot(slot);
        self.stats.inspected += 1;
        self.stats.expansions += 1;
        self.stats.replacement_insts += len as u64;
    }

    /// Per-µop half of a verified group's replay: stamps a slot already
    /// verified by [`DiseEngine::block_group_verify`], with exactly the
    /// LRU effect of [`DiseEngine::block_replacement_stamp`]'s success
    /// path and no key re-check.
    #[inline]
    pub fn block_stamp_unchecked(&mut self, slot: u32) {
        self.rt.stamp_slot(slot);
    }

    /// [`DiseEngine::block_group_enter`] without the LRU stamp, for
    /// statically conflict-free RTs (see [`DiseEngine::rt_static`]):
    /// when no fill can ever evict, stamps only feed a victim choice
    /// that is never made, so the group replay reduces to its
    /// inspection statistics.
    #[inline]
    pub fn block_group_enter_static(&mut self, len: u8) {
        self.stats.inspected += 1;
        self.stats.expansions += 1;
        self.stats.replacement_insts += len as u64;
    }

    /// [`DiseEngine::block_group_enter_static`] for a whole straight
    /// segment at once: `expands` verified expansion groups totalling
    /// `repl` replacement instructions retire in one statistics update
    /// (the executor precomputed both at translation time). Only valid
    /// on a statically conflict-free RT, where the skipped stamps are
    /// provably unobservable.
    #[inline]
    pub fn block_segment_enter(&mut self, expands: u64, repl: u64) {
        self.stats.inspected += expands;
        self.stats.expansions += expands;
        self.stats.replacement_insts += repl;
    }

    /// Whole-group replay of a verified multi-block straight group's RT
    /// reference string in one call: the entry stamp and statistics of
    /// [`DiseEngine::block_group_enter`] followed by every per-µop stamp
    /// of [`DiseEngine::block_stamp_unchecked`], in the slow path's
    /// exact order. Stamps commute with the group's µop execution
    /// (straight groups execute nothing that reaches the engine), so
    /// hoisting them above it leaves RT state bit-identical while the
    /// executor's µop loop runs engine-free.
    #[inline]
    pub fn block_group_replay(&mut self, plans: &[u32], len: u8) {
        self.rt.stamp_slot(plans[0] - 1);
        self.stats.inspected += 1;
        self.stats.expansions += 1;
        self.stats.replacement_insts += len as u64;
        for &p in plans {
            self.rt.stamp_slot(p - 1);
        }
    }

    /// True when a length-`len` sequence's every RT reference lands on
    /// the block already touched by [`DiseEngine::block_expand_hit`] —
    /// i.e. the executor may skip the per-µop
    /// [`DiseEngine::block_replacement_hit`] replay after an entry hit:
    ///
    /// * perfect RT: touches never mutate (no LRU), and residency is
    ///   whole-sequence (fills insert and invalidations remove every
    ///   block of `id` together), so an entry hit implies every µop hits
    ///   and no replay has an effect;
    /// * `len <= rt_block`: the sequence occupies the single block the
    ///   entry touch already moved to MRU; repeated touches of an MRU
    ///   entry are no-ops, and no fill can intervene mid-group, so the
    ///   dynamic path through the sequence (DISE jumps, early exits)
    ///   cannot change which blocks get referenced.
    ///
    /// Multi-block sequences on a finite RT must take the per-µop path:
    /// which blocks the slow path references, and in what order, depends
    /// on the dynamic path.
    pub fn single_block_sequences(&self, len: u8) -> bool {
        match self.config.rt_org {
            RtOrganization::Perfect => true,
            _ => len as usize <= self.rt.block(),
        }
    }

    /// Credits `n` inspections accumulated by a block executor for
    /// pass-through instructions (the slow path counts one per fetched
    /// instruction; a block counts locally and flushes at block exits).
    #[inline]
    pub fn add_inspected(&mut self, n: u64) {
        self.stats.inspected += n;
    }

    /// Inspects one fetched instruction (every fetched instruction passes
    /// through here, §2). Performs PT/RT fills as needed and reports the
    /// outcome; on [`Expansion::Miss`] the caller should charge the stall
    /// and then re-inspect the same instruction, which will then hit.
    pub fn inspect(&mut self, inst: &Inst) -> Expansion {
        self.stats.inspected += 1;
        let opn = inst.op.number() as usize;
        let (active, resident) = self.counters[opn];
        if active != resident {
            // PT miss: fault in all patterns for this opcode (§2.3).
            let penalty = self.fill_pt(inst.op);
            self.stats.pt_misses += 1;
            self.stats.stall_cycles += penalty;
            return Expansion::Miss {
                kind: crate::controller::MissKind::Pt,
                penalty,
            };
        }
        if active == 0 {
            return Expansion::None;
        }
        // Fully-associative match over resident patterns, most specific
        // wins. The fast path consults the static per-opcode index
        // instead of scanning the whole PT: reaching this point requires
        // `active == resident` for the opcode, i.e. every rule covering
        // it is resident, so the index's rule set equals the resident
        // covering set; a pattern can only match instructions whose
        // opcode it covers, and the winning key is unique (it includes
        // the rule index), so both scans pick the same rule.
        let rules = self.controller.productions().rules();
        let candidates: &[usize] = if self.config.fast_path {
            &self.op_rules[opn]
        } else {
            &self.pt_resident
        };
        let best = candidates
            .iter()
            .map(|i| (*i, &rules[*i]))
            .filter(|(_, r)| r.pattern.matches(inst))
            .max_by_key(|(i, r)| (r.priority, r.pattern.specificity(), usize::MAX - *i));
        let Some((_, rule)) = best else {
            return Expansion::None;
        };
        let id = match rule.seq {
            crate::production::SeqRef::Fixed(id) => id,
            crate::production::SeqRef::FromTag { base } => {
                base + inst.codeword_tag() as u32
            }
        };
        // RT presence check for the first instruction of the sequence.
        if !self.rt.contains(id, 0) {
            match self.fill_rt(id) {
                Ok(penalty) => {
                    self.stats.rt_misses += 1;
                    self.stats.stall_cycles += penalty;
                    return Expansion::Miss {
                        kind: crate::controller::MissKind::Rt,
                        penalty,
                    };
                }
                Err(_) => return Expansion::Fault { id },
            }
        }
        let len = self
            .rt
            .get(id, 0)
            .map(|(_, seq_len)| seq_len)
            .expect("checked resident");
        self.stats.expansions += 1;
        self.stats.replacement_insts += len as u64;
        Expansion::Expand { id, len }
    }

    /// [`DiseEngine::inspect`] with the trigger's raw instruction word in
    /// hand (a predecoded frontend knows it for free). When the fast path
    /// is enabled, steady-state outcomes are served from a direct-mapped
    /// memo keyed by the word: the pattern match and RT length lookup are
    /// skipped, but stats deltas and the RT's LRU reference are replayed
    /// exactly, so [`EngineStats`] and future miss behavior are
    /// bit-identical to the slow path.
    pub fn inspect_decoded(&mut self, inst: &Inst, raw: u32) -> Expansion {
        if !self.config.fast_path {
            return self.inspect(inst);
        }
        // Opcodes no pattern covers (the common case) resolve from the
        // live counters alone — cheaper than a memo probe, and literally
        // the same early-exit `inspect` takes.
        let (active, resident) = self.counters[inst.op.number() as usize];
        if (active, resident) == (0, 0) {
            self.stats.inspected += 1;
            return Expansion::None;
        }
        if let Some(shared) = &self.shared {
            // The shared architectural memo is only valid when every rule
            // covering this opcode is PT-resident — the counters are the
            // hardware's own encoding of exactly that condition, and the
            // check must precede the probe (the shared memo, unlike the
            // private one, is never invalidated by fills or switches).
            if active == resident {
                match shared.lookup(raw) {
                    Some(None) => {
                        self.stats.inspected += 1;
                        return Expansion::None;
                    }
                    // The slow path would call `rt.get(id, 0)` here;
                    // replay its LRU effect. On an RT miss fall through
                    // to the live path, which models the fill.
                    Some(Some((id, len))) if self.rt.touch(id, 0) => {
                        self.stats.inspected += 1;
                        self.stats.expansions += 1;
                        self.stats.replacement_insts += len as u64;
                        return Expansion::Expand { id, len };
                    }
                    _ => {}
                }
            }
            // PT misses, RT misses, faults and unmemoized words all take
            // the live path. No private-memo store: every steady-state
            // outcome for this image is already in the shared layer.
            return self.inspect(inst);
        }
        let slot = Self::exp_slot(raw);
        if let Some((word, outcome)) = self.exp_memo.get(slot).copied().flatten() {
            if word == raw {
                match outcome {
                    Expansion::None => {
                        self.stats.inspected += 1;
                        return Expansion::None;
                    }
                    // The slow path would call `rt.get(id, 0)` here;
                    // replay its LRU effect. Residency is guaranteed (any
                    // eviction since the memo store invalidated it), but
                    // fall through defensively if not.
                    Expansion::Expand { id, len } if self.rt.touch(id, 0) => {
                        self.stats.inspected += 1;
                        self.stats.expansions += 1;
                        self.stats.replacement_insts += len as u64;
                        return Expansion::Expand { id, len };
                    }
                    _ => {}
                }
            }
        }
        let outcome = self.inspect(inst);
        if matches!(outcome, Expansion::None | Expansion::Expand { .. }) {
            self.exp_memo_mut()[slot] = Some((raw, outcome));
        }
        outcome
    }

    /// Architectural (miss-free) inspection: what would this instruction
    /// expand to, ignoring table state? Used by functional-only execution
    /// and by tests.
    pub fn inspect_architectural(&self, inst: &Inst) -> Option<ReplacementId> {
        self.controller.productions().lookup(inst)
    }

    /// Produces the replacement instruction at `disepc` of sequence `id`,
    /// instantiated against the trigger. If the entry was evicted between
    /// inspection and fetch (possible mid-sequence), it is transparently
    /// refetched through the controller and the miss is accounted.
    ///
    /// # Errors
    ///
    /// Fails if `id` has no installed sequence or `disepc` is out of range.
    pub fn fetch_replacement(
        &mut self,
        id: ReplacementId,
        disepc: u8,
        trigger: &Inst,
        trigger_pc: u64,
    ) -> Result<Inst> {
        if !self.rt.contains(id, disepc) {
            let penalty = self.fill_rt(id)?;
            self.stats.rt_misses += 1;
            self.stats.stall_cycles += penalty;
        }
        // The RT `get` already has the spec in hand, so the directive
        // walk is the cheapest instantiation here — the arena's packed
        // rows pay off in the whole-sequence paths
        // ([`DiseEngine::instantiate_block_span`]), not per µop on top
        // of a completed RT reference.
        let (spec, _) = self
            .rt
            .get(id, disepc)
            .ok_or(CoreError::UnknownSequence(id))?;
        spec.instantiate(trigger, trigger_pc)
    }

    /// [`DiseEngine::fetch_replacement`] with the trigger's raw word in
    /// hand. When the fast path is enabled, successful instantiations are
    /// memoized by `(id, disepc, trigger word, trigger pc)`; a hit skips
    /// the spec lookup and template evaluation but replays the RT's LRU
    /// reference, keeping miss modeling bit-identical to the slow path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DiseEngine::fetch_replacement`].
    pub fn fetch_replacement_decoded(
        &mut self,
        id: ReplacementId,
        disepc: u8,
        trigger: &Inst,
        raw: u32,
        trigger_pc: u64,
    ) -> Result<Inst> {
        if !self.config.fast_path {
            return self.fetch_replacement(id, disepc, trigger, trigger_pc);
        }
        let key = (id, disepc, raw, trigger_pc);
        let slot = Self::inst_slot(&key);
        if let Some((k, inst)) = self.inst_memo.get(slot).copied().flatten() {
            // Residency is guaranteed on a hit (fills and installs
            // invalidate the memo), so `touch` replays the slow path's
            // `contains` + `get` pair; fall through defensively if not.
            if k == key && self.rt.touch(id, disepc) {
                return Ok(inst);
            }
        }
        let inst = self.fetch_replacement(id, disepc, trigger, trigger_pc)?;
        self.inst_memo_mut()[slot] = Some((key, inst));
        Ok(inst)
    }

    /// Length of sequence `id`, if installed.
    pub fn seq_len(&self, id: ReplacementId) -> Option<u8> {
        self.controller
            .resolve_spec(id)
            .ok()
            .map(|(s, _)| s.len() as u8)
    }

    /// Installs a transparent production at run time — the user-level
    /// face of the controller API (§2.3). The pattern-counter table's
    /// active counts are updated, so the new pattern is faulted into the
    /// PT (with the usual miss penalty) the next time a covered opcode is
    /// fetched.
    ///
    /// # Errors
    ///
    /// Fails if the replacement sequence is structurally invalid.
    pub fn install_transparent(
        &mut self,
        pattern: crate::pattern::Pattern,
        spec: crate::spec::ReplacementSpec,
    ) -> Result<ReplacementId> {
        let id = self
            .controller
            .productions_mut()
            .add_transparent(pattern, spec)?;
        for op in pattern.opcodes() {
            self.counters[op.number() as usize].0 += 1;
        }
        // The architectural set diverged from any shared snapshot, and
        // previously memoized `None` outcomes may now expand.
        self.detach_shared();
        self.invalidate_memos();
        self.rebuild_arena();
        self.recompute_rt_static();
        self.generation += 1;
        Ok(id)
    }

    /// Installs (or replaces) an aware replacement sequence under
    /// `(cw_op, tag)` at run time. Stale RT entries for the sequence are
    /// invalidated; if this is the first sequence for `cw_op`, the aware
    /// rule is activated in the pattern-counter table.
    ///
    /// # Errors
    ///
    /// Fails if the spec is invalid or the tag exceeds 11 bits.
    pub fn install_aware(
        &mut self,
        cw_op: Op,
        tag: u16,
        spec: crate::spec::ReplacementSpec,
    ) -> Result<ReplacementId> {
        let had_rule = self
            .controller
            .productions()
            .rules_for_opcode(cw_op)
            .iter()
            .any(|r| matches!(r.seq, crate::production::SeqRef::FromTag { .. }));
        let id = self.controller.productions_mut().add_aware(cw_op, tag, spec)?;
        if !had_rule {
            self.counters[cw_op.number() as usize].0 += 1;
        }
        self.rt.invalidate(id);
        // The shared snapshot and memoized expansions/instantiations for
        // `id` are stale, and memo hits assume RT residency (which
        // `rt.invalidate` just broke).
        self.detach_shared();
        self.invalidate_memos();
        self.rebuild_arena();
        self.recompute_rt_static();
        self.generation += 1;
        Ok(id)
    }

    /// Simulates a context switch (§2.3): the PT and RT contents are
    /// discarded — they are physical caches and will be faulted back in on
    /// demand — while the architectural production set (the virtualized
    /// state the OS saves and restores) is preserved. Purely a performance
    /// event; results never change.
    pub fn context_switch(&mut self) {
        // The shared frontend stays attached: it is architectural state
        // (a pure function of the production set and program image), and
        // the pattern counters gate every probe of it, so a cold PT after
        // the switch faults in through the live path exactly as before.
        self.pt_resident.clear();
        for c in &mut self.counters {
            c.1 = 0;
        }
        self.rt = RtStore::new(&self.config);
        self.invalidate_memos();
        self.recompute_rt_static();
        self.generation += 1;
    }

    fn fill_pt(&mut self, op: Op) -> u64 {
        // `op_rules[op]` lists exactly the rules covering `op`, in rule
        // order — the same ascending order the old full-list scan
        // produced, which matters because insertion order decides PT LRU
        // state and therefore future evictions.
        let missing: Vec<usize> = self.op_rules[op.number() as usize]
            .iter()
            .copied()
            .filter(|i| !self.pt_resident.contains(i))
            .collect();
        let rules = self.controller.productions().rules();
        for idx in missing {
            // Evict LRU (back of the list) if full.
            while self.pt_resident.len() >= self.config.pt_entries {
                let evicted = self.pt_resident.pop().expect("non-empty");
                for o in rules[evicted].pattern.opcodes() {
                    self.counters[o.number() as usize].1 -= 1;
                }
            }
            self.pt_resident.insert(0, idx);
            for o in rules[idx].pattern.opcodes() {
                self.counters[o.number() as usize].1 += 1;
            }
        }
        // Residency changed, so memoized inspect outcomes are stale —
        // and so are externally baked blocks (the fill may have evicted
        // patterns for *other* opcodes, flipping their counters).
        self.invalidate_memos();
        self.generation += 1;
        self.config.miss_penalty
    }

    /// Fills the RT with every instruction of sequence `id`; returns the
    /// stall penalty (150 cycles if the fill required composition).
    fn fill_rt(&mut self, id: ReplacementId) -> Result<u64> {
        let (spec, composed) = self.controller.resolve_spec(id)?;
        let len = spec.len() as u8;
        let specs: Vec<InstSpec> = spec.insts.clone();
        self.rt.insert_sequence(id, len, &specs);
        // The insert may have evicted another sequence whose expansions
        // or instantiations are memoized.
        self.invalidate_memos();
        if composed {
            self.stats.composed_fills += 1;
            Ok(self.config.compose_penalty)
        } else {
            Ok(self.config.miss_penalty)
        }
    }

    /// Extracts the engine's *mutable* state for checkpointing: PT
    /// residency, RT keys/LRU state, and statistics. Replacement-sequence
    /// payloads are deliberately **not** exported — they are a pure
    /// function of the (immutable, fingerprint-identified) production
    /// set and are re-derived on [`DiseEngine::import_state`]. Memos,
    /// the spec arena, and the shared frontend are likewise excluded:
    /// they are rebuildable caches, and the import bumps
    /// [`DiseEngine::generation`] so no externally baked translation
    /// survives either.
    pub fn export_state(&self) -> EngineState {
        let rt = match &self.rt {
            RtStore::Cache { keys, stamps, .. } => {
                // Canonical LRU form. The victim choice is the minimum
                // stamp among a set's occupied slots, so only the
                // *relative order* of stamps is observable — raw tick
                // values legitimately differ between the per-µop path
                // and the block executor's batched replays (which skip
                // provably order-preserving MRU re-stamps). Densely
                // re-ranking the stamps makes behaviorally identical
                // engines export identical state. On a statically
                // conflict-free RT the victim choice is never made at
                // all, so the stamps are dead state and export as
                // zeros.
                let (stamps, clock) = if self.rt_static {
                    (vec![0; stamps.len()], 0)
                } else {
                    let mut order: Vec<usize> =
                        (0..stamps.len()).filter(|&i| keys[i] != 0).collect();
                    order.sort_unstable_by_key(|&i| stamps[i]);
                    let mut ranked = vec![0u64; stamps.len()];
                    for (rank, &i) in order.iter().enumerate() {
                        ranked[i] = rank as u64 + 1;
                    }
                    let clock = order.len() as u64;
                    (ranked, clock)
                };
                RtState::Cache {
                    keys: keys.clone(),
                    stamps,
                    clock,
                }
            }
            RtStore::Perfect { map, .. } => {
                let mut resident: Vec<(ReplacementId, u8)> = map.keys().copied().collect();
                resident.sort_unstable();
                RtState::Perfect { resident }
            }
        };
        EngineState {
            pt_resident: self.pt_resident.clone(),
            rt,
            stats: self.stats,
        }
    }

    /// Reinjects state captured by [`DiseEngine::export_state`] into an
    /// engine freshly constructed over the *same* configuration and
    /// production set (callers validate both via content fingerprints
    /// before getting here; the checks below catch corrupt snapshots with
    /// actionable errors rather than undefined replay).
    ///
    /// Restored RT payloads come from [`Controller::resolve_spec`] — the
    /// exact source RT fills use — chunked at the original block bases,
    /// with keys replayed verbatim and LRU stamps in the canonical rank
    /// form [`DiseEngine::export_state`] produces. Victim choice only
    /// compares stamps, so every future hit/miss/victim decision is
    /// bit-identical to the uninterrupted engine. All memos are dropped
    /// and the generation is bumped: caches rebuild cold, stale
    /// translations cannot survive.
    ///
    /// # Errors
    ///
    /// [`CoreError::Restore`] when the state names a rule index, RT
    /// geometry, or sequence shape the current engine cannot hold.
    pub fn import_state(&mut self, state: &EngineState) -> Result<()> {
        let rules_len = self.controller.productions().rules().len();
        if state.pt_resident.len() > self.config.pt_entries {
            return Err(CoreError::Restore(format!(
                "snapshot holds {} PT-resident rules but the engine has {} PT entries",
                state.pt_resident.len(),
                self.config.pt_entries
            )));
        }
        for (n, &idx) in state.pt_resident.iter().enumerate() {
            if idx >= rules_len {
                return Err(CoreError::Restore(format!(
                    "PT-resident rule index {idx} out of range ({rules_len} rules installed)"
                )));
            }
            if state.pt_resident[..n].contains(&idx) {
                return Err(CoreError::Restore(format!(
                    "PT-resident rule index {idx} appears twice"
                )));
            }
        }

        let mut rt = RtStore::new(&self.config);
        let block = rt.block();
        // Payload re-derivation: decode each live key, resolve its
        // sequence through the controller, and slice the original block.
        let chunk = |id: ReplacementId, base: u8, count: usize| -> Result<RtSeq> {
            let (spec, _) = self.controller.resolve_spec(id).map_err(|e| {
                CoreError::Restore(format!(
                    "RT-resident sequence R{id} no longer resolves: {e}"
                ))
            })?;
            let b = base as usize;
            let specs = spec.insts.get(b..b + count).ok_or_else(|| {
                CoreError::Restore(format!(
                    "RT entry for R{id} base {base} count {count} exceeds the resolved \
                     sequence length {}",
                    spec.len()
                ))
            })?;
            Ok(RtSeq {
                seq_len: spec.len() as u8,
                specs: specs.to_vec(),
            })
        };
        match (&mut rt, &state.rt) {
            (
                RtStore::Cache {
                    keys,
                    seqs,
                    stamps,
                    clock,
                    ..
                },
                RtState::Cache {
                    keys: skeys,
                    stamps: sstamps,
                    clock: sclock,
                },
            ) => {
                if skeys.len() != keys.len() || sstamps.len() != skeys.len() {
                    return Err(CoreError::Restore(format!(
                        "RT geometry mismatch: snapshot has {} slots, engine config \
                         allocates {}",
                        skeys.len(),
                        keys.len()
                    )));
                }
                for (i, &k) in skeys.iter().enumerate() {
                    if k == 0 {
                        continue;
                    }
                    let id = (k >> 16) as ReplacementId;
                    let base = ((k >> 8) & 0xFF) as u8;
                    seqs[i] = chunk(id, base, (k & 0xFF) as usize)?;
                    keys[i] = k;
                }
                stamps.copy_from_slice(sstamps);
                *clock = *sclock;
            }
            (RtStore::Perfect { map, .. }, RtState::Perfect { resident }) => {
                for &(id, base) in resident {
                    let b = base as usize;
                    if !b.is_multiple_of(block) {
                        return Err(CoreError::Restore(format!(
                            "perfect-RT key R{id} base {base} is not aligned to the \
                             {block}-spec block size"
                        )));
                    }
                    let (spec, _) = self.controller.resolve_spec(id).map_err(|e| {
                        CoreError::Restore(format!(
                            "RT-resident sequence R{id} no longer resolves: {e}"
                        ))
                    })?;
                    let len = spec.len();
                    if b >= len {
                        return Err(CoreError::Restore(format!(
                            "perfect-RT key R{id} base {base} exceeds the resolved \
                             sequence length {len}"
                        )));
                    }
                    let end = (b + block).min(len);
                    map.insert(
                        (id, base),
                        RtSeq {
                            seq_len: len as u8,
                            specs: spec.insts[b..end].to_vec(),
                        },
                    );
                }
            }
            (_, _) => {
                return Err(CoreError::Restore(format!(
                    "snapshot RT organization does not match the engine's {:?}",
                    self.config.rt_org
                )));
            }
        }

        self.pt_resident = state.pt_resident.clone();
        let rules = self.controller.productions().rules();
        for c in &mut self.counters {
            c.1 = 0;
        }
        for &idx in &self.pt_resident {
            for o in rules[idx].pattern.opcodes() {
                self.counters[o.number() as usize].1 += 1;
            }
        }
        self.rt = rt;
        self.stats = state.stats;
        self.invalidate_memos();
        self.recompute_rt_static();
        self.generation += 1;
        Ok(())
    }
}

/// Serializable mutable RT contents (see [`EngineState`]). Payloads are
/// never part of the state — only placement (which keys live in which
/// slots) and LRU history, which together determine all future RT
/// behavior once payloads are re-derived from the production set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtState {
    /// Finite organizations: the full packed-key and LRU-stamp arrays
    /// (dead slots included, so slot placement survives) plus the
    /// reference clock.
    Cache {
        /// Packed `(id, base, spec-count)` key words, `0` = empty slot.
        keys: Vec<u64>,
        /// LRU stamps, parallel to `keys`, in canonical form: occupied
        /// slots hold their dense recency rank (`1` = LRU-most across
        /// the whole table), empty slots hold `0`, and a statically
        /// conflict-free RT — whose stamps are dead state — exports all
        /// zeros. Only the relative order is ever observed (the fill
        /// victim is a set's minimum stamp), so ranks replay the exact
        /// live behavior.
        stamps: Vec<u64>,
        /// Reference tick feeding post-restore stamps: the number of
        /// ranked (occupied) slots in canonical form.
        clock: u64,
    },
    /// Perfect RT: the resident block keys, sorted (it has no LRU state).
    Perfect {
        /// Resident `(id, base DISEPC)` block keys.
        resident: Vec<(ReplacementId, u8)>,
    },
}

/// The engine's mutable state, as extracted by
/// [`DiseEngine::export_state`]: everything snapshot/restore must carry
/// beyond the (immutable, separately fingerprinted) production set and
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineState {
    /// Indices of PT-resident rules, MRU-first — exactly the engine's
    /// working list, so fill/evict order replays identically. Resident
    /// pattern counters are recomputed from this on import.
    pub pt_resident: Vec<usize>,
    /// RT placement and LRU state.
    pub rt: RtState,
    /// Accumulated statistics.
    pub stats: EngineStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::MissKind;
    use crate::pattern::Pattern;
    use crate::spec::{ImmDirective, OpDirective, RegDirective, ReplacementSpec};
    use dise_isa::{OpClass, Reg};

    fn i(s: &str) -> Inst {
        s.parse().unwrap()
    }

    fn two_inst_spec() -> ReplacementSpec {
        ReplacementSpec::new(vec![
            InstSpec::Templated {
                op: OpDirective::Literal(Op::Srl),
                ra: RegDirective::TriggerRs,
                rb: RegDirective::Literal(Reg::ZERO),
                rc: RegDirective::Literal(Reg::dr(1)),
                imm: ImmDirective::Literal(26),
                uses_lit: true,
                dise_branch: false,
            },
            InstSpec::Trigger,
        ])
    }

    fn engine_with_store_rule(config: EngineConfig) -> DiseEngine {
        let mut set = ProductionSet::new();
        set.add_transparent(Pattern::opclass(OpClass::Store), two_inst_spec())
            .unwrap();
        DiseEngine::with_productions(config, set).unwrap()
    }

    #[test]
    fn first_touch_misses_then_hits() {
        let mut e = engine_with_store_rule(EngineConfig::default());
        let st = i("stq r1, 0(r2)");
        // Cold PT.
        assert!(matches!(
            e.inspect(&st),
            Expansion::Miss {
                kind: MissKind::Pt,
                penalty: 30
            }
        ));
        // PT now resident; RT cold.
        assert!(matches!(
            e.inspect(&st),
            Expansion::Miss {
                kind: MissKind::Rt,
                penalty: 30
            }
        ));
        // Hit.
        let Expansion::Expand { id, len } = e.inspect(&st) else {
            panic!()
        };
        assert_eq!(len, 2);
        let first = e.fetch_replacement(id, 0, &st, 0x1000).unwrap();
        assert_eq!(first.to_string(), "srl r2, #26, $dr1");
        let second = e.fetch_replacement(id, 1, &st, 0x1000).unwrap();
        assert_eq!(second, st);
        assert_eq!(e.stats().pt_misses, 1);
        assert_eq!(e.stats().rt_misses, 1);
        assert_eq!(e.stats().expansions, 1);
        assert_eq!(e.stats().stall_cycles, 60);
    }

    #[test]
    fn non_matching_instructions_pass_through() {
        let mut e = engine_with_store_rule(EngineConfig::default());
        // Loads never match the store rule; no PT entries are active for
        // ldq, so there's no miss either.
        assert_eq!(e.inspect(&i("ldq r1, 0(r2)")), Expansion::None);
        assert_eq!(e.inspect(&i("nop")), Expansion::None);
        assert_eq!(e.stats().pt_misses, 0);
    }

    #[test]
    fn empty_engine_never_expands() {
        let mut e = DiseEngine::new(EngineConfig::default());
        for s in ["stq r1, 0(r2)", "ldq r1, 0(r2)", "nop", "bne r1, -4"] {
            assert_eq!(e.inspect(&i(s)), Expansion::None);
        }
        assert_eq!(e.stats().inspected, 4);
    }

    #[test]
    fn aware_codewords_resolve_by_tag() {
        let mut set = ProductionSet::new();
        set.add_aware(Op::Cw0, 3, two_inst_spec()).unwrap();
        let mut e = DiseEngine::with_productions(EngineConfig::default(), set).unwrap();
        let cw = Inst::codeword(Op::Cw0, 0, 4, 0, 3);
        assert!(matches!(e.inspect(&cw), Expansion::Miss { .. })); // PT
        assert!(matches!(e.inspect(&cw), Expansion::Miss { .. })); // RT
        let Expansion::Expand { id, len } = e.inspect(&cw) else {
            panic!()
        };
        assert_eq!(len, 2);
        // T.RS of a codeword doesn't exist; but our spec uses TriggerRs...
        // codewords have no RS, so fetching errors.
        assert!(e.fetch_replacement(id, 0, &cw, 0).is_err());
    }

    #[test]
    fn unknown_tag_faults() {
        let mut set = ProductionSet::new();
        set.add_aware(Op::Cw0, 3, two_inst_spec()).unwrap();
        let mut e = DiseEngine::with_productions(EngineConfig::default(), set).unwrap();
        let bad = Inst::codeword(Op::Cw0, 0, 0, 0, 9);
        assert!(matches!(e.inspect(&bad), Expansion::Miss { .. })); // PT fill
        assert!(matches!(e.inspect(&bad), Expansion::Fault { .. }));
    }

    #[test]
    fn rt_capacity_causes_repeat_misses() {
        // A 2-entry direct-mapped RT with two 2-instruction sequences
        // thrashes.
        let mut set = ProductionSet::new();
        set.add_aware(Op::Cw0, 0, two_inst_spec()).unwrap();
        set.add_aware(Op::Cw0, 1, two_inst_spec()).unwrap();
        let config = EngineConfig {
            rt_entries: 2,
            rt_org: RtOrganization::DirectMapped,
            ..EngineConfig::default()
        };
        let mut e = DiseEngine::with_productions(config, set).unwrap();
        let cw0 = Inst::codeword(Op::Cw0, 0, 0, 0, 0);
        let cw1 = Inst::codeword(Op::Cw0, 0, 0, 0, 1);
        let _ = e.inspect(&cw0); // PT miss
        let mut rt_misses = 0;
        for _ in 0..8 {
            for cw in [&cw0, &cw1] {
                loop {
                    match e.inspect(cw) {
                        Expansion::Miss {
                            kind: MissKind::Rt, ..
                        } => rt_misses += 1,
                        Expansion::Expand { .. } => break,
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
        }
        assert!(
            rt_misses > 2,
            "expected thrashing in a tiny RT, got {rt_misses} misses"
        );

        // A perfect RT misses each sequence at most once.
        let mut set = ProductionSet::new();
        set.add_aware(Op::Cw0, 0, two_inst_spec()).unwrap();
        set.add_aware(Op::Cw0, 1, two_inst_spec()).unwrap();
        let mut e =
            DiseEngine::with_productions(EngineConfig::default().perfect_rt(), set).unwrap();
        let _ = e.inspect(&cw0);
        for _ in 0..8 {
            for cw in [&cw0, &cw1] {
                let _ = e.inspect(cw);
            }
        }
        assert!(e.stats().rt_misses <= 2);
    }

    #[test]
    fn most_specific_resident_pattern_wins() {
        let mut set = ProductionSet::new();
        set.add_transparent(Pattern::opclass(OpClass::Store), two_inst_spec())
            .unwrap();
        set.add_transparent(
            Pattern::opclass(OpClass::Store).with_rs(Reg::SP),
            ReplacementSpec::identity(),
        )
        .unwrap();
        let mut e = DiseEngine::with_productions(EngineConfig::default(), set).unwrap();
        let sp_store = i("stq r1, 0(r30)");
        let _ = e.inspect(&sp_store); // PT fill
        loop {
            match e.inspect(&sp_store) {
                Expansion::Expand { len, .. } => {
                    assert_eq!(len, 1, "identity expansion should win");
                    break;
                }
                Expansion::Miss { .. } => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn runtime_installation_activates_on_next_fetch() {
        let mut e = DiseEngine::new(EngineConfig::default());
        let st = i("stq r1, 0(r2)");
        assert_eq!(e.inspect(&st), Expansion::None);
        // Install a store production at run time.
        e.install_transparent(Pattern::opclass(OpClass::Store), two_inst_spec())
            .unwrap();
        // The next fetch of a store faults the pattern in, then expands.
        assert!(matches!(e.inspect(&st), Expansion::Miss { .. }));
        assert!(matches!(e.inspect(&st), Expansion::Miss { .. }));
        assert!(matches!(e.inspect(&st), Expansion::Expand { len: 2, .. }));
        // Unrelated instructions remain untouched.
        assert_eq!(e.inspect(&i("addq r1, r2, r3")), Expansion::None);
    }

    #[test]
    fn aware_reinstallation_invalidates_stale_entries() {
        // Aware sequences address trigger fields via codeword parameters.
        let param_spec = |op: Op, shift: i64| {
            crate::spec::ReplacementSpec::new(vec![InstSpec::Templated {
                op: OpDirective::Literal(op),
                ra: RegDirective::Param(0),
                rb: RegDirective::Literal(Reg::ZERO),
                rc: RegDirective::Literal(Reg::dr(1)),
                imm: ImmDirective::Literal(shift),
                uses_lit: true,
                dise_branch: false,
            }])
        };
        let mut e = DiseEngine::new(EngineConfig::default());
        e.install_aware(Op::Cw0, 4, param_spec(Op::Srl, 2)).unwrap();
        let cw = Inst::codeword(Op::Cw0, 0, 2, 0, 4);
        let id = loop {
            match e.inspect(&cw) {
                Expansion::Expand { id, .. } => break id,
                Expansion::Miss { .. } => continue,
                other => panic!("{other:?}"),
            }
        };
        let first = e.fetch_replacement(id, 0, &cw, 0).unwrap();
        assert_eq!(first.op, Op::Srl);
        // Replace the sequence (dynamic code generation, §3.2): the RT
        // entry must not serve the stale expansion.
        e.install_aware(Op::Cw0, 4, param_spec(Op::Sll, 3)).unwrap();
        let id = loop {
            match e.inspect(&cw) {
                Expansion::Expand { id, len } => {
                    assert_eq!(len, 1);
                    break id;
                }
                Expansion::Miss { .. } => continue,
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(e.fetch_replacement(id, 0, &cw, 0).unwrap().op, Op::Sll);
    }

    #[test]
    fn context_switch_is_a_pure_performance_event() {
        let mut e = engine_with_store_rule(EngineConfig::default());
        let st = i("stq r1, 0(r2)");
        let _ = e.inspect(&st);
        let _ = e.inspect(&st);
        let Expansion::Expand { id, len } = e.inspect(&st) else {
            panic!()
        };
        let misses_before = e.stats().pt_misses + e.stats().rt_misses;
        e.context_switch();
        // Same architectural outcome after re-faulting the tables in.
        assert!(matches!(e.inspect(&st), Expansion::Miss { .. }));
        assert!(matches!(e.inspect(&st), Expansion::Miss { .. }));
        let Expansion::Expand { id: id2, len: len2 } = e.inspect(&st) else {
            panic!()
        };
        assert_eq!((id, len), (id2, len2));
        assert_eq!(
            e.stats().pt_misses + e.stats().rt_misses,
            misses_before + 2,
            "context switch costs exactly one refill of each table"
        );
    }

    #[test]
    fn fast_path_is_bit_identical_to_slow_path() {
        let build = |config: EngineConfig| {
            let mut set = ProductionSet::new();
            set.add_transparent(Pattern::opclass(OpClass::Store), two_inst_spec())
                .unwrap();
            set.add_aware(Op::Cw0, 3, two_inst_spec()).unwrap();
            DiseEngine::with_productions(config, set).unwrap()
        };
        let config = EngineConfig {
            rt_entries: 4,
            rt_org: RtOrganization::DirectMapped,
            ..EngineConfig::default()
        };
        let mut fast = build(config);
        let mut slow = build(config.slow_path());
        let insts = [
            i("stq r1, 0(r2)"),
            i("ldq r1, 0(r2)"),
            i("stl r5, 8(r2)"),
            i("nop"),
            Inst::codeword(Op::Cw0, 0, 4, 0, 3),
        ];
        for round in 0..6 {
            for (n, inst) in insts.iter().enumerate() {
                let raw = inst.encode().unwrap();
                let f = fast.inspect_decoded(inst, raw);
                let s = slow.inspect(inst);
                assert_eq!(f, s, "round {round} inst {n}: {inst}");
                if let Expansion::Expand { id, len } = f {
                    for disepc in 0..len {
                        let ff = fast.fetch_replacement_decoded(id, disepc, inst, raw, 0x1000);
                        let ss = slow.fetch_replacement(id, disepc, inst, 0x1000);
                        assert_eq!(ff, ss, "round {round} inst {n} disepc {disepc}");
                    }
                }
            }
            if round == 2 {
                fast.context_switch();
                slow.context_switch();
            }
        }
        assert_eq!(fast.stats(), slow.stats());
    }

    #[test]
    fn shared_frontend_is_bit_identical_to_slow_path() {
        let build_set = || {
            let mut set = ProductionSet::new();
            set.add_transparent(Pattern::opclass(OpClass::Store), two_inst_spec())
                .unwrap();
            set.add_aware(Op::Cw0, 3, two_inst_spec()).unwrap();
            set
        };
        let config = EngineConfig {
            rt_entries: 4,
            rt_org: RtOrganization::DirectMapped,
            ..EngineConfig::default()
        };
        let insts = [
            i("stq r1, 0(r2)"),
            i("ldq r1, 0(r2)"),
            i("stl r5, 8(r2)"),
            i("nop"),
            Inst::codeword(Op::Cw0, 0, 4, 0, 3),
            Inst::codeword(Op::Cw0, 0, 4, 0, 9), // unresolvable tag: faults
        ];
        let mut shared_eng = DiseEngine::with_productions(config, build_set()).unwrap();
        let shared = Arc::new(SharedFrontend::build(
            shared_eng.controller(),
            insts.iter().map(|inst| (*inst, inst.encode().unwrap())),
        ));
        // Memoized: the two stores and the resolvable codeword. The
        // fault-tagged codeword and the uncovered opcodes (ldq, nop —
        // the engine's counters early-exit those) stay out.
        assert_eq!(shared.memo_len(), 3);
        shared_eng.set_shared_frontend(Arc::clone(&shared));
        let mut slow = DiseEngine::with_productions(config.slow_path(), build_set()).unwrap();
        for round in 0..6 {
            for (n, inst) in insts.iter().enumerate() {
                let raw = inst.encode().unwrap();
                let f = shared_eng.inspect_decoded(inst, raw);
                let s = slow.inspect(inst);
                assert_eq!(f, s, "round {round} inst {n}: {inst}");
                if let Expansion::Expand { id, len } = f {
                    for disepc in 0..len {
                        let ff =
                            shared_eng.fetch_replacement_decoded(id, disepc, inst, raw, 0x1000);
                        let ss = slow.fetch_replacement(id, disepc, inst, 0x1000);
                        assert_eq!(ff, ss, "round {round} inst {n} disepc {disepc}");
                    }
                }
            }
            if round == 2 {
                shared_eng.context_switch();
                slow.context_switch();
            }
        }
        assert_eq!(shared_eng.stats(), slow.stats());
        // The shared frontend survives context switches untouched.
        assert!(shared_eng.shared_frontend().is_some());
    }

    #[test]
    fn runtime_install_detaches_shared_frontend() {
        let mut e = engine_with_store_rule(EngineConfig::default());
        let st = i("stq r1, 0(r2)");
        let raw = st.encode().unwrap();
        let shared = Arc::new(SharedFrontend::build(
            e.controller(),
            [(st, raw)],
        ));
        e.set_shared_frontend(shared);
        let _ = e.inspect_decoded(&st, raw); // PT
        let _ = e.inspect_decoded(&st, raw); // RT
        assert!(matches!(e.inspect_decoded(&st, raw), Expansion::Expand { len: 2, .. }));
        // A runtime install changes the architectural set: the stale
        // shared snapshot must be dropped and the new rule must win.
        e.install_transparent(
            Pattern::opclass(OpClass::Store).with_rs(Reg::SP),
            ReplacementSpec::identity(),
        )
        .unwrap();
        assert!(e.shared_frontend().is_none());
        let sp_store = i("stq r1, 0(r30)");
        let sp_raw = sp_store.encode().unwrap();
        let _ = e.inspect_decoded(&sp_store, sp_raw); // PT refill
        loop {
            match e.inspect_decoded(&sp_store, sp_raw) {
                Expansion::Expand { len, .. } => {
                    assert_eq!(len, 1, "identity expansion should win");
                    break;
                }
                Expansion::Miss { .. } => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn install_transparent_invalidates_memoized_outcomes() {
        let mut e = DiseEngine::new(EngineConfig::default());
        let st = i("stq r1, 0(r2)");
        let raw = st.encode().unwrap();
        // Memoize the pass-through outcome (second call is a memo hit).
        assert_eq!(e.inspect_decoded(&st, raw), Expansion::None);
        assert_eq!(e.inspect_decoded(&st, raw), Expansion::None);
        // Installing a store production must flush the stale `None`.
        e.install_transparent(Pattern::opclass(OpClass::Store), two_inst_spec())
            .unwrap();
        assert!(matches!(e.inspect_decoded(&st, raw), Expansion::Miss { .. }));
        assert!(matches!(e.inspect_decoded(&st, raw), Expansion::Miss { .. }));
        assert!(matches!(
            e.inspect_decoded(&st, raw),
            Expansion::Expand { len: 2, .. }
        ));
    }

    #[test]
    fn install_aware_invalidates_memoized_instantiations() {
        let param_spec = |op: Op| {
            ReplacementSpec::new(vec![InstSpec::Templated {
                op: OpDirective::Literal(op),
                ra: RegDirective::Param(0),
                rb: RegDirective::Literal(Reg::ZERO),
                rc: RegDirective::Literal(Reg::dr(1)),
                imm: ImmDirective::Literal(2),
                uses_lit: true,
                dise_branch: false,
            }])
        };
        let mut e = DiseEngine::new(EngineConfig::default());
        e.install_aware(Op::Cw0, 4, param_spec(Op::Srl)).unwrap();
        let cw = Inst::codeword(Op::Cw0, 0, 2, 0, 4);
        let raw = cw.encode().unwrap();
        let id = loop {
            match e.inspect_decoded(&cw, raw) {
                Expansion::Expand { id, .. } => break id,
                Expansion::Miss { .. } => continue,
                other => panic!("{other:?}"),
            }
        };
        // Memoize the instantiation (second call is a memo hit).
        assert_eq!(
            e.fetch_replacement_decoded(id, 0, &cw, raw, 0).unwrap().op,
            Op::Srl
        );
        assert_eq!(
            e.fetch_replacement_decoded(id, 0, &cw, raw, 0).unwrap().op,
            Op::Srl
        );
        // Reinstallation must flush both memos.
        e.install_aware(Op::Cw0, 4, param_spec(Op::Sll)).unwrap();
        let id = loop {
            match e.inspect_decoded(&cw, raw) {
                Expansion::Expand { id, .. } => break id,
                Expansion::Miss { .. } => continue,
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(
            e.fetch_replacement_decoded(id, 0, &cw, raw, 0).unwrap().op,
            Op::Sll
        );
    }

    #[test]
    fn context_switch_invalidates_memos() {
        let mut e = engine_with_store_rule(EngineConfig::default());
        let st = i("stq r1, 0(r2)");
        let raw = st.encode().unwrap();
        let _ = e.inspect_decoded(&st, raw);
        let _ = e.inspect_decoded(&st, raw);
        assert!(matches!(e.inspect_decoded(&st, raw), Expansion::Expand { .. }));
        assert!(matches!(e.inspect_decoded(&st, raw), Expansion::Expand { .. }));
        // After a context switch the tables are cold again; a stale memo
        // hit would wrongly report an expansion with no miss.
        e.context_switch();
        assert!(matches!(e.inspect_decoded(&st, raw), Expansion::Miss { .. }));
    }

    #[test]
    fn block_coalescing_is_functionally_invisible_but_fragments() {
        // The same aware working set under block sizes 1 and 4: identical
        // expansions, but coalescing wastes slots (internal fragmentation)
        // and so misses more in a same-sized RT.
        let build_set = || {
            let mut set = ProductionSet::new();
            for tag in 0..8u16 {
                // 3-instruction sequences: one block entry of 4 wastes 1
                // slot each.
                let spec = ReplacementSpec::new(vec![
                    InstSpec::Templated {
                        op: OpDirective::Literal(Op::Addq),
                        ra: RegDirective::Param(0),
                        rb: RegDirective::Literal(Reg::ZERO),
                        rc: RegDirective::Param(1),
                        imm: ImmDirective::Literal(0),
                        uses_lit: false,
                        dise_branch: false,
                    };
                    3
                ]);
                set.add_aware(Op::Cw0, tag, spec).unwrap();
            }
            set
        };
        let run = |block: u32| {
            let config = EngineConfig {
                rt_entries: 16,
                rt_org: RtOrganization::DirectMapped,
                rt_block: block,
                ..EngineConfig::default()
            };
            let mut e = DiseEngine::with_productions(config, build_set()).unwrap();
            let mut seqs = Vec::new();
            for round in 0..4 {
                for tag in 0..8u16 {
                    let cw = Inst::codeword(Op::Cw0, 1, 2, 0, tag);
                    let id = loop {
                        match e.inspect(&cw) {
                            Expansion::Expand { id, len } => {
                                assert_eq!(len, 3, "round {round}");
                                break id;
                            }
                            Expansion::Miss { .. } => continue,
                            other => panic!("{other:?}"),
                        }
                    };
                    for d in 0..3 {
                        seqs.push(e.fetch_replacement(id, d, &cw, 0).unwrap());
                    }
                }
            }
            (seqs, e.stats().rt_misses)
        };
        let (seq1, misses1) = run(1);
        let (seq4, misses4) = run(4);
        assert_eq!(seq1, seq4, "coalescing never changes expansions");
        assert!(
            misses4 >= misses1,
            "fragmentation cannot reduce misses: {misses4} < {misses1}"
        );
    }

    #[test]
    fn generation_tracks_outcome_changing_events_only() {
        let mut e = engine_with_store_rule(EngineConfig::default());
        let g0 = e.generation();
        let st = i("stq r1, 0(r2)");
        let _ = e.inspect(&st); // PT miss: fill bumps
        assert_eq!(e.generation(), g0 + 1);
        let _ = e.inspect(&st); // RT miss: fill must NOT bump
        assert_eq!(e.generation(), g0 + 1);
        assert!(matches!(e.inspect(&st), Expansion::Expand { .. }));
        assert_eq!(e.generation(), g0 + 1);
        e.context_switch();
        assert_eq!(e.generation(), g0 + 2);
        e.install_transparent(
            Pattern::opclass(OpClass::Store).with_rs(Reg::SP),
            ReplacementSpec::identity(),
        )
        .unwrap();
        assert_eq!(e.generation(), g0 + 3);
        e.install_aware(Op::Cw0, 1, two_inst_spec()).unwrap();
        assert_eq!(e.generation(), g0 + 4);
    }

    #[test]
    fn block_outcome_matches_steady_state_inspect() {
        let mut set = ProductionSet::new();
        set.add_transparent(Pattern::opclass(OpClass::Store), two_inst_spec())
            .unwrap();
        set.add_aware(Op::Cw0, 3, two_inst_spec()).unwrap();
        let mut e = DiseEngine::with_productions(EngineConfig::default(), set).unwrap();
        let st = i("stq r1, 0(r2)");
        let cw = Inst::codeword(Op::Cw0, 0, 4, 0, 3);
        let bad = Inst::codeword(Op::Cw0, 0, 0, 0, 9);
        // Cold counters: not bakeable.
        assert_eq!(e.block_outcome(&st), BlockOutcome::NotReady);
        // Uncovered opcodes are bakeable pass-throughs even when cold.
        assert_eq!(e.block_outcome(&i("nop")), BlockOutcome::Pass);
        // Warm the PT, then the outcomes must agree with `inspect`.
        while matches!(e.inspect(&st), Expansion::Miss { .. }) {}
        let Expansion::Expand { id, len } = e.inspect(&st) else {
            panic!()
        };
        assert_eq!(e.block_outcome(&st), BlockOutcome::Expand { id, len });
        assert_eq!(e.block_outcome(&i("ldq r1, 0(r2)")), BlockOutcome::Pass);
        while matches!(e.inspect(&cw), Expansion::Miss { .. }) {}
        assert!(matches!(e.block_outcome(&cw), BlockOutcome::Expand { len: 2, .. }));
        assert_eq!(e.block_outcome(&bad), BlockOutcome::Fault);
        // The probe mutated nothing: generation and stats are untouched
        // by block_outcome itself.
        let stats = e.stats();
        let generation = e.generation();
        let _ = e.block_outcome(&st);
        assert_eq!((e.stats(), e.generation()), (stats, generation));
    }

    #[test]
    fn block_replay_is_bit_identical_to_inspect_and_fetch() {
        // Drive a slow-path engine with the live loop and a second engine
        // with the baked replay hooks; stats and LRU-observable miss
        // behavior must match on a thrash-prone direct-mapped RT.
        let config = EngineConfig {
            rt_entries: 4,
            rt_org: RtOrganization::DirectMapped,
            ..EngineConfig::default()
        };
        // Codewords carry no T.RS, so the sequences address their
        // trigger through codeword parameters.
        let param_spec = || {
            ReplacementSpec::new(vec![
                InstSpec::Templated {
                    op: OpDirective::Literal(Op::Srl),
                    ra: RegDirective::Param(0),
                    rb: RegDirective::Literal(Reg::ZERO),
                    rc: RegDirective::Literal(Reg::dr(1)),
                    imm: ImmDirective::Literal(26),
                    uses_lit: true,
                    dise_branch: false,
                },
                InstSpec::Templated {
                    op: OpDirective::Literal(Op::Addq),
                    ra: RegDirective::Literal(Reg::dr(1)),
                    rb: RegDirective::Literal(Reg::ZERO),
                    rc: RegDirective::Literal(Reg::dr(2)),
                    imm: ImmDirective::Literal(1),
                    uses_lit: true,
                    dise_branch: false,
                },
            ])
        };
        let build = || {
            let mut set = ProductionSet::new();
            set.add_aware(Op::Cw0, 0, param_spec()).unwrap();
            set.add_aware(Op::Cw0, 1, param_spec()).unwrap();
            set
        };
        let mut live = DiseEngine::with_productions(config.slow_path(), build()).unwrap();
        let mut baked = DiseEngine::with_productions(config, build()).unwrap();
        let cws = [
            Inst::codeword(Op::Cw0, 0, 2, 0, 0),
            Inst::codeword(Op::Cw0, 0, 2, 0, 1),
        ];
        // Warm both PTs (one fill each; generations advance in lockstep).
        assert!(matches!(live.inspect(&cws[0]), Expansion::Miss { .. }));
        assert!(matches!(
            baked.inspect_decoded(&cws[0], cws[0].encode().unwrap()),
            Expansion::Miss { .. }
        ));
        // Translate once per codeword under the now-stable generation.
        let outcome: Vec<(ReplacementId, u8)> = cws
            .iter()
            .map(|cw| match baked.block_outcome(cw) {
                BlockOutcome::Expand { id, len } => (id, len),
                other => panic!("{other:?}"),
            })
            .collect();
        let generation = baked.generation();
        for round in 0..6 {
            for (cw, (id, len)) in cws.iter().zip(&outcome) {
                let raw = cw.encode().unwrap();
                // Live reference: inspect loop + per-DISEPC fetches.
                loop {
                    match live.inspect(cw) {
                        Expansion::Miss { .. } => continue,
                        Expansion::Expand { .. } => break,
                        other => panic!("{other:?}"),
                    }
                }
                for d in 0..*len {
                    live.fetch_replacement(*id, d, cw, 0x1000).unwrap();
                }
                // Baked replay: hooks, with the live path on RT loss.
                if !baked.block_expand_hit(*id, *len) {
                    loop {
                        match baked.inspect_decoded(cw, raw) {
                            Expansion::Miss { .. } => continue,
                            Expansion::Expand { .. } => break,
                            other => panic!("{other:?}"),
                        }
                    }
                }
                for d in 0..*len {
                    let inst = baked.instantiate_block(*id, d, cw, 0x1000).unwrap();
                    if !baked.block_replacement_hit(*id, d) {
                        assert_eq!(
                            baked
                                .fetch_replacement_decoded(*id, d, cw, raw, 0x1000)
                                .unwrap(),
                            inst,
                            "round {round} disepc {d}: baked inst diverged"
                        );
                    }
                }
                assert_eq!(baked.generation(), generation, "RT fills must not bump");
            }
            assert_eq!(baked.stats(), live.stats(), "round {round}");
        }
        assert!(baked.stats().rt_misses > 2, "RT was supposed to thrash");
    }

    #[test]
    fn stats_track_replacement_volume() {
        let mut e = engine_with_store_rule(EngineConfig::default());
        let st = i("stq r1, 0(r2)");
        let _ = e.inspect(&st);
        let _ = e.inspect(&st);
        for _ in 0..10 {
            assert!(matches!(e.inspect(&st), Expansion::Expand { .. }));
        }
        assert_eq!(e.stats().expansions, 10);
        assert_eq!(e.stats().replacement_insts, 20);
        e.reset_stats();
        assert_eq!(e.stats(), EngineStats::default());
    }

    /// Warm an engine (PT + RT resident, stats accumulated), export, and
    /// import into a freshly constructed twin: every observable —
    /// inspection outcomes, fetched replacements, statistics, and the
    /// re-exported state itself — must match the original, and the
    /// import must bump the generation so stale external translations
    /// die.
    #[test]
    fn export_import_round_trips_bit_identically() {
        let configs = [
            EngineConfig::default(),
            EngineConfig {
                rt_entries: 4,
                rt_org: RtOrganization::DirectMapped,
                ..EngineConfig::default()
            },
            EngineConfig {
                rt_entries: 8,
                rt_org: RtOrganization::SetAssociative(2),
                rt_block: 2,
                ..EngineConfig::default()
            },
            EngineConfig::default().perfect_rt(),
        ];
        for config in configs {
            let mut warm = engine_with_store_rule(config);
            let st = i("stq r1, 0(r2)");
            let ld_st = i("stl r3, 8(r2)");
            for _ in 0..6 {
                let _ = warm.inspect(&st);
                let _ = warm.inspect(&ld_st);
            }
            let state = warm.export_state();

            let mut cold = engine_with_store_rule(config);
            let g0 = cold.generation();
            cold.import_state(&state).unwrap();
            assert!(cold.generation() > g0, "{config:?}: generation must bump");
            assert_eq!(cold.stats(), warm.stats(), "{config:?}: stats");
            assert_eq!(
                cold.export_state(),
                state,
                "{config:?}: re-export diverged"
            );
            // Both engines now behave identically, hit-for-hit.
            for round in 0..8 {
                let a = warm.inspect(&st);
                let b = cold.inspect(&st);
                assert_eq!(a, b, "{config:?} round {round}: outcome");
                if let Expansion::Expand { id, len } = a {
                    for d in 0..len {
                        assert_eq!(
                            warm.fetch_replacement(id, d, &st, 0x2000).unwrap(),
                            cold.fetch_replacement(id, d, &st, 0x2000).unwrap(),
                            "{config:?} round {round} disepc {d}"
                        );
                    }
                }
                assert_eq!(warm.stats(), cold.stats(), "{config:?} round {round}");
            }
        }
    }

    /// Import validation: geometry, organization, and rule-index
    /// mismatches fail with errors that name what diverged.
    #[test]
    fn import_rejects_mismatched_state() {
        let small = EngineConfig {
            rt_entries: 4,
            rt_org: RtOrganization::DirectMapped,
            ..EngineConfig::default()
        };
        let mut warm = engine_with_store_rule(small);
        let st = i("stq r1, 0(r2)");
        for _ in 0..4 {
            let _ = warm.inspect(&st);
        }
        let state = warm.export_state();

        // Wrong geometry (more slots than the target allocates).
        let mut bigger = engine_with_store_rule(EngineConfig {
            rt_entries: 16,
            ..small
        });
        let err = bigger.import_state(&state).unwrap_err().to_string();
        assert!(
            err.contains("RT geometry mismatch") && err.contains("slots"),
            "unhelpful geometry error: {err}"
        );

        // Wrong organization.
        let mut perfect = engine_with_store_rule(small.perfect_rt());
        let err = perfect.import_state(&state).unwrap_err().to_string();
        assert!(
            err.contains("organization") && err.contains("Perfect"),
            "unhelpful organization error: {err}"
        );

        // A PT-resident rule index past the installed rule count.
        let mut bad = state.clone();
        bad.pt_resident = vec![7];
        let mut target = engine_with_store_rule(small);
        let err = target.import_state(&bad).unwrap_err().to_string();
        assert!(
            err.contains("rule index 7") && err.contains("out of range"),
            "unhelpful rule-index error: {err}"
        );

        // An RT key naming a sequence the production set doesn't hold.
        if let RtState::Cache { keys, .. } = &mut bad.rt {
            if let Some(k) = keys.iter_mut().find(|k| **k != 0) {
                *k = (999u64 << 16) | (*k & 0xFFFF);
            }
        }
        bad.pt_resident = state.pt_resident.clone();
        let mut target = engine_with_store_rule(small);
        let err = target.import_state(&bad).unwrap_err().to_string();
        assert!(
            err.contains("R999") && err.contains("no longer resolves"),
            "unhelpful unknown-sequence error: {err}"
        );
    }
}
