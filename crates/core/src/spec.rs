//! Replacement-sequence specifications and the instantiation logic (IL).
//!
//! Each replacement instruction field carries a *directive* saying how to
//! produce the actual field value from the replacement literal and the
//! trigger (paper §2.1). The instantiation logic is the combinational
//! circuit that executes these directives (§2.2); here it is the pure
//! function [`InstSpec::instantiate`].

use crate::{CoreError, Result};
use dise_isa::{Inst, Op, Reg};
use std::fmt;

/// Directive for a register field of a replacement instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegDirective {
    /// Use this register literally (covers both the paper's *literal* and
    /// *dedicated* directives — dedicated registers are just literal
    /// registers in the extended file).
    Literal(Reg),
    /// The trigger's `T.RS` (primary source / address register).
    TriggerRs,
    /// The trigger's `T.RT` (secondary source / store data register).
    TriggerRt,
    /// The trigger's `T.RD` (destination register).
    TriggerRd,
    /// Codeword parameter `slot` (0–2) interpreted as a register number
    /// (aware ACFs, paper §3.2 `T.P1`…`T.P3`).
    Param(u8),
}

impl RegDirective {
    pub(crate) fn resolve(&self, trigger: &Inst) -> Result<Reg> {
        let missing = |what: &str| {
            Err(CoreError::Instantiate(format!(
                "trigger `{trigger}` has no {what}"
            )))
        };
        match self {
            RegDirective::Literal(r) => Ok(*r),
            RegDirective::TriggerRs => trigger.rs().map_or_else(|| missing("T.RS"), Ok),
            RegDirective::TriggerRt => trigger.rt().map_or_else(|| missing("T.RT"), Ok),
            RegDirective::TriggerRd => trigger.rd().map_or_else(|| missing("T.RD"), Ok),
            RegDirective::Param(slot) => {
                if !trigger.op.is_codeword() {
                    return Err(CoreError::Instantiate(format!(
                        "T.P{} on non-codeword trigger `{trigger}`",
                        slot + 1
                    )));
                }
                Ok(Reg::r(trigger.codeword_params()[*slot as usize]))
            }
        }
    }

    /// True if this directive reads a field of the trigger.
    pub fn is_parameterized(&self) -> bool {
        !matches!(self, RegDirective::Literal(_))
    }
}

impl fmt::Display for RegDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegDirective::Literal(r) => write!(f, "{r}"),
            RegDirective::TriggerRs => f.write_str("T.RS"),
            RegDirective::TriggerRt => f.write_str("T.RT"),
            RegDirective::TriggerRd => f.write_str("T.RD"),
            RegDirective::Param(s) => write!(f, "T.P{}", s + 1),
        }
    }
}

/// Directive for the immediate field of a replacement instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ImmDirective {
    /// Use this value literally.
    Literal(i64),
    /// The trigger's immediate field (`T.IMM`).
    TriggerImm,
    /// The trigger's PC (`T.PC`) — the paper notes encoding the trigger PC
    /// in a replacement immediate is useful for profiling ACFs.
    TriggerPc,
    /// For branches: displacement computed at expansion time so the branch
    /// reaches absolute address `target` from the trigger's PC. This is how
    /// transparent ACFs reach a fixed error handler with PC-relative
    /// branches.
    AbsTarget(u64),
    /// Codeword parameter `slot` (0–2): `value = ext(param) << shift`, sign-
    /// extending from 5 bits when `signed`.
    Param {
        /// Parameter slot (0–2).
        slot: u8,
        /// Left shift applied after extension.
        shift: u8,
        /// Sign-extend from 5 bits.
        signed: bool,
    },
    /// Two codeword parameters fused into a 10-bit field (`hi:lo`):
    /// `value = ext(hi·32 + lo) << shift`, sign-extending from 10 bits when
    /// `signed`. Used for parameterized PC-relative branch offsets in
    /// compression (paper §3.2).
    Param2 {
        /// Slot providing the low 5 bits.
        lo: u8,
        /// Slot providing the high 5 bits.
        hi: u8,
        /// Left shift applied after extension.
        shift: u8,
        /// Sign-extend from 10 bits.
        signed: bool,
    },
}

impl ImmDirective {
    pub(crate) fn resolve(&self, trigger: &Inst, trigger_pc: u64) -> Result<i64> {
        let param = |slot: u8| -> Result<u8> {
            if !trigger.op.is_codeword() {
                return Err(CoreError::Instantiate(format!(
                    "parameter directive on non-codeword trigger `{trigger}`"
                )));
            }
            Ok(trigger.codeword_params()[slot as usize])
        };
        Ok(match self {
            ImmDirective::Literal(v) => *v,
            ImmDirective::TriggerImm => trigger.imm,
            ImmDirective::TriggerPc => trigger_pc as i64,
            ImmDirective::AbsTarget(target) => *target as i64 - (trigger_pc as i64 + 4),
            ImmDirective::Param {
                slot,
                shift,
                signed,
            } => {
                let raw = param(*slot)? as i64;
                let v = if *signed { (raw << 59) >> 59 } else { raw };
                v << shift
            }
            ImmDirective::Param2 {
                lo,
                hi,
                shift,
                signed,
            } => {
                let raw = ((param(*hi)? as i64) << 5) | param(*lo)? as i64;
                let v = if *signed { (raw << 54) >> 54 } else { raw };
                v << shift
            }
        })
    }

    /// True if this directive reads a field of the trigger (or its PC).
    pub fn is_parameterized(&self) -> bool {
        !matches!(self, ImmDirective::Literal(_) | ImmDirective::AbsTarget(_))
    }
}

impl fmt::Display for ImmDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImmDirective::Literal(v) => write!(f, "#{v}"),
            ImmDirective::TriggerImm => f.write_str("T.IMM"),
            ImmDirective::TriggerPc => f.write_str("T.PC"),
            ImmDirective::AbsTarget(t) => write!(f, "={t:#x}"),
            ImmDirective::Param {
                slot,
                shift,
                signed,
            } => write!(
                f,
                "T.P{}{}{}",
                slot + 1,
                if *signed { "s" } else { "" },
                if *shift > 0 {
                    format!("<<{shift}")
                } else {
                    String::new()
                }
            ),
            ImmDirective::Param2 {
                lo,
                hi,
                shift,
                signed,
            } => write!(
                f,
                "T.P{}:{}{}{}",
                hi + 1,
                lo + 1,
                if *signed { "s" } else { "" },
                if *shift > 0 {
                    format!("<<{shift}")
                } else {
                    String::new()
                }
            ),
        }
    }
}

/// Directive for the opcode of a replacement instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpDirective {
    /// Use this opcode literally.
    Literal(Op),
    /// The trigger's opcode (`T.OP`) — e.g. to re-emit "the original kind of
    /// load" in a sequence shared by `ldl` and `ldq` patterns.
    Trigger,
}

impl fmt::Display for OpDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpDirective::Literal(op) => write!(f, "{op}"),
            OpDirective::Trigger => f.write_str("T.OP"),
        }
    }
}

/// One replacement-instruction specification.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InstSpec {
    /// `T.INSN` — the original trigger itself.
    Trigger,
    /// A templated instruction whose fields carry directives.
    Templated {
        /// Opcode directive.
        op: OpDirective,
        /// `ra` field directive.
        ra: RegDirective,
        /// `rb` field directive.
        rb: RegDirective,
        /// `rc` field directive.
        rc: RegDirective,
        /// Immediate directive.
        imm: ImmDirective,
        /// Operate format: second operand is the immediate literal.
        uses_lit: bool,
        /// This is a DISE-internal branch; `imm` must resolve to the
        /// absolute target index within the sequence.
        dise_branch: bool,
    },
}

impl InstSpec {
    /// A fully literal instruction spec (every field taken from `inst`).
    pub fn literal(inst: Inst) -> InstSpec {
        InstSpec::Templated {
            op: OpDirective::Literal(inst.op),
            ra: RegDirective::Literal(inst.ra),
            rb: RegDirective::Literal(inst.rb),
            rc: RegDirective::Literal(inst.rc),
            imm: ImmDirective::Literal(inst.imm),
            uses_lit: inst.uses_lit,
            dise_branch: inst.dise_branch,
        }
    }

    /// Executes the instantiation directives against a trigger, producing
    /// the replacement instruction (the IL function, paper §2.2).
    ///
    /// # Errors
    ///
    /// Fails if a directive requires a trigger field the trigger lacks
    /// (e.g. `T.RT` of a load) or a parameter of a non-codeword trigger.
    pub fn instantiate(&self, trigger: &Inst, trigger_pc: u64) -> Result<Inst> {
        match self {
            InstSpec::Trigger => Ok(*trigger),
            InstSpec::Templated {
                op,
                ra,
                rb,
                rc,
                imm,
                uses_lit,
                dise_branch,
            } => {
                let op = match op {
                    OpDirective::Literal(o) => *o,
                    OpDirective::Trigger => trigger.op,
                };
                Ok(Inst {
                    op,
                    ra: ra.resolve(trigger)?,
                    rb: rb.resolve(trigger)?,
                    rc: rc.resolve(trigger)?,
                    imm: imm.resolve(trigger, trigger_pc)?,
                    uses_lit: *uses_lit,
                    dise_branch: *dise_branch,
                })
            }
        }
    }

    /// True if any field reads the trigger (the entry costs 8 dictionary
    /// bytes instead of 4 in the compression accounting, paper §4.2).
    pub fn is_parameterized(&self) -> bool {
        match self {
            InstSpec::Trigger => true,
            InstSpec::Templated {
                op, ra, rb, rc, imm, ..
            } => {
                matches!(op, OpDirective::Trigger)
                    || ra.is_parameterized()
                    || rb.is_parameterized()
                    || rc.is_parameterized()
                    || imm.is_parameterized()
            }
        }
    }

    /// The dedicated registers this spec names, for composition renaming.
    pub fn dedicated_regs(&self) -> Vec<Reg> {
        let mut out = Vec::new();
        if let InstSpec::Templated { ra, rb, rc, .. } = self {
            for d in [ra, rb, rc] {
                if let RegDirective::Literal(r) = d {
                    if r.is_dedicated() {
                        out.push(*r);
                    }
                }
            }
        }
        out
    }

    /// Rewrites dedicated-register literals through `f` (composition
    /// renaming support).
    pub fn rename_dedicated(&mut self, f: &mut impl FnMut(Reg) -> Reg) {
        if let InstSpec::Templated { ra, rb, rc, .. } = self {
            for d in [ra, rb, rc] {
                if let RegDirective::Literal(r) = d {
                    if r.is_dedicated() {
                        *d = RegDirective::Literal(f(*r));
                    }
                }
            }
        }
    }
}

impl fmt::Display for InstSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstSpec::Trigger => f.write_str("T.INSN"),
            InstSpec::Templated {
                op,
                ra,
                rb,
                rc,
                imm,
                uses_lit,
                dise_branch,
            } => {
                // Render in roughly assembler shape; exact layout depends on
                // the opcode when it is literal.
                let suffix = if *dise_branch { ".d" } else { "" };
                if let OpDirective::Literal(o) = op {
                    match o.format() {
                        dise_isa::op::Format::Memory => {
                            return write!(f, "{o} {ra}, {imm}({rb})")
                        }
                        dise_isa::op::Format::Branch => {
                            return write!(f, "{o}{suffix} {ra}, {imm}")
                        }
                        dise_isa::op::Format::Jump => return write!(f, "{o} {ra}, ({rb})"),
                        dise_isa::op::Format::Operate => {
                            return if *uses_lit {
                                write!(f, "{o} {ra}, {imm}, {rc}")
                            } else {
                                write!(f, "{o} {ra}, {rb}, {rc}")
                            }
                        }
                        _ => {}
                    }
                }
                write!(f, "{op}{suffix} ra={ra} rb={rb} rc={rc} imm={imm}")
            }
        }
    }
}

/// A complete replacement-sequence specification.
///
/// Invariants (checked by [`ReplacementSpec::validate`]): non-empty, and
/// every DISE-internal branch targets an index within the sequence (the
/// paper's control model: one dynamic replacement sequence cannot jump into
/// another).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplacementSpec {
    /// The instruction specs, in sequence order (DISEPC order).
    pub insts: Vec<InstSpec>,
}

impl ReplacementSpec {
    /// Creates a spec from instruction specs.
    pub fn new(insts: Vec<InstSpec>) -> ReplacementSpec {
        ReplacementSpec { insts }
    }

    /// The identity expansion `[T.INSN]`, used for negative patterns
    /// (paper §2.2).
    pub fn identity() -> ReplacementSpec {
        ReplacementSpec {
            insts: vec![InstSpec::Trigger],
        }
    }

    /// Sequence length in instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the sequence is empty (invalid; see `validate`).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Checks the structural invariants.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadProduction`] if the sequence is empty or a
    /// DISE branch targets an index outside the sequence.
    pub fn validate(&self) -> Result<()> {
        if self.insts.is_empty() {
            return Err(CoreError::BadProduction(
                "empty replacement sequence".into(),
            ));
        }
        for (i, spec) in self.insts.iter().enumerate() {
            if let InstSpec::Templated {
                dise_branch: true,
                imm,
                ..
            } = spec
            {
                match imm {
                    ImmDirective::Literal(t) if (0..self.insts.len() as i64).contains(t) => {}
                    ImmDirective::Literal(t) => {
                        return Err(CoreError::BadProduction(format!(
                            "DISE branch at index {i} targets @{t}, outside the sequence"
                        )))
                    }
                    _ => {
                        return Err(CoreError::BadProduction(format!(
                            "DISE branch at index {i} must have a literal target"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Instantiates the whole sequence against a trigger.
    ///
    /// # Errors
    ///
    /// See [`InstSpec::instantiate`].
    pub fn instantiate_all(&self, trigger: &Inst, trigger_pc: u64) -> Result<Vec<Inst>> {
        self.insts
            .iter()
            .map(|s| s.instantiate(trigger, trigger_pc))
            .collect()
    }

    /// All dedicated registers named anywhere in the sequence.
    pub fn dedicated_regs(&self) -> Vec<Reg> {
        let mut v: Vec<Reg> = self
            .insts
            .iter()
            .flat_map(InstSpec::dedicated_regs)
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Number of parameterized entries (8-byte dictionary entries in the
    /// compression accounting).
    pub fn num_parameterized(&self) -> usize {
        self.insts
            .iter()
            .filter(|s| s.is_parameterized())
            .count()
    }
}

impl fmt::Display for ReplacementSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.insts.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(s: &str) -> Inst {
        s.parse().unwrap()
    }

    /// The paper's Figure 1 replacement sequence, built by hand.
    fn mfi_spec() -> ReplacementSpec {
        ReplacementSpec::new(vec![
            InstSpec::Templated {
                op: OpDirective::Literal(Op::Srl),
                ra: RegDirective::TriggerRs,
                rb: RegDirective::Literal(Reg::ZERO),
                rc: RegDirective::Literal(Reg::dr(1)),
                imm: ImmDirective::Literal(26),
                uses_lit: true,
                dise_branch: false,
            },
            InstSpec::Templated {
                op: OpDirective::Literal(Op::Cmpeq),
                ra: RegDirective::Literal(Reg::dr(1)),
                rb: RegDirective::Literal(Reg::dr(2)),
                rc: RegDirective::Literal(Reg::dr(1)),
                imm: ImmDirective::Literal(0),
                uses_lit: false,
                dise_branch: false,
            },
            InstSpec::Templated {
                op: OpDirective::Literal(Op::Beq),
                ra: RegDirective::Literal(Reg::dr(1)),
                rb: RegDirective::Literal(Reg::ZERO),
                rc: RegDirective::Literal(Reg::ZERO),
                imm: ImmDirective::AbsTarget(0x7000),
                uses_lit: false,
                dise_branch: false,
            },
            InstSpec::Trigger,
        ])
    }

    #[test]
    fn figure_1_expansion() {
        let spec = mfi_spec();
        spec.validate().unwrap();
        let store = i("stq r0, 0(r2)");
        let out = spec.instantiate_all(&store, 0x1000).unwrap();
        assert_eq!(out[0].to_string(), "srl r2, #26, $dr1");
        assert_eq!(out[1].to_string(), "cmpeq $dr1, $dr2, $dr1");
        // Branch from trigger PC 0x1000 to 0x7000 → disp 0x5FFC.
        assert_eq!(out[2].imm, 0x7000 - 0x1004);
        assert_eq!(out[3], store);
        assert_eq!(spec.dedicated_regs(), vec![Reg::dr(1), Reg::dr(2)]);
    }

    #[test]
    fn trigger_field_directives() {
        let spec = InstSpec::Templated {
            op: OpDirective::Trigger,
            ra: RegDirective::TriggerRd,
            rb: RegDirective::TriggerRs,
            rc: RegDirective::Literal(Reg::ZERO),
            imm: ImmDirective::TriggerImm,
            uses_lit: false,
            dise_branch: false,
        };
        let ld = i("ldq r5, 24(r7)");
        let out = spec.instantiate(&ld, 0).unwrap();
        assert_eq!(out, ld);
    }

    #[test]
    fn missing_trigger_field_is_an_error() {
        let spec = InstSpec::Templated {
            op: OpDirective::Literal(Op::Addq),
            ra: RegDirective::TriggerRt, // loads have no T.RT
            rb: RegDirective::Literal(Reg::ZERO),
            rc: RegDirective::Literal(Reg::ZERO),
            imm: ImmDirective::Literal(0),
            uses_lit: false,
            dise_branch: false,
        };
        assert!(matches!(
            spec.instantiate(&i("ldq r1, 0(r2)"), 0),
            Err(CoreError::Instantiate(_))
        ));
    }

    #[test]
    fn codeword_parameters() {
        // Figure 4 shape: `lda T.P1, T.P2(T.P1)`.
        let spec = InstSpec::Templated {
            op: OpDirective::Literal(Op::Lda),
            ra: RegDirective::Param(0),
            rb: RegDirective::Param(0),
            rc: RegDirective::Literal(Reg::ZERO),
            imm: ImmDirective::Param {
                slot: 1,
                shift: 0,
                signed: true,
            },
            uses_lit: false,
            dise_branch: false,
        };
        let cw = Inst::codeword(Op::Cw0, 2, 8, 0, 55);
        let out = spec.instantiate(&cw, 0).unwrap();
        assert_eq!(out.to_string(), "lda r2, 8(r2)");
        // Signed 5-bit parameter: 24 → −8.
        let cw_neg = Inst::codeword(Op::Cw0, 3, 24, 0, 55);
        let out = spec.instantiate(&cw_neg, 0).unwrap();
        assert_eq!(out.to_string(), "lda r3, -8(r3)");
    }

    #[test]
    fn fused_parameter_pairs() {
        let spec = InstSpec::Templated {
            op: OpDirective::Literal(Op::Br),
            ra: RegDirective::Literal(Reg::ZERO),
            rb: RegDirective::Literal(Reg::ZERO),
            rc: RegDirective::Literal(Reg::ZERO),
            imm: ImmDirective::Param2 {
                lo: 1,
                hi: 2,
                shift: 2,
                signed: true,
            },
            uses_lit: false,
            dise_branch: false,
        };
        // hi=31, lo=31 → raw 1023 → signed −1 → <<2 = −4.
        let cw = Inst::codeword(Op::Cw0, 0, 31, 31, 0);
        assert_eq!(spec.instantiate(&cw, 0).unwrap().imm, -4);
        // hi=1, lo=0 → raw 32 → <<2 = 128.
        let cw = Inst::codeword(Op::Cw0, 0, 0, 1, 0);
        assert_eq!(spec.instantiate(&cw, 0).unwrap().imm, 128);
    }

    #[test]
    fn parameter_on_non_codeword_fails() {
        let spec = InstSpec::Templated {
            op: OpDirective::Literal(Op::Addq),
            ra: RegDirective::Param(0),
            rb: RegDirective::Literal(Reg::ZERO),
            rc: RegDirective::Literal(Reg::ZERO),
            imm: ImmDirective::Literal(0),
            uses_lit: false,
            dise_branch: false,
        };
        assert!(spec.instantiate(&i("nop"), 0).is_err());
    }

    #[test]
    fn trigger_pc_directive() {
        let spec = InstSpec::Templated {
            op: OpDirective::Literal(Op::Lda),
            ra: RegDirective::Literal(Reg::dr(4)),
            rb: RegDirective::Literal(Reg::ZERO),
            rc: RegDirective::Literal(Reg::ZERO),
            imm: ImmDirective::TriggerPc,
            uses_lit: false,
            dise_branch: false,
        };
        assert_eq!(spec.instantiate(&i("nop"), 0x1234).unwrap().imm, 0x1234);
    }

    #[test]
    fn validation_rejects_bad_sequences() {
        assert!(ReplacementSpec::default().validate().is_err());
        let mut s = ReplacementSpec::identity();
        s.insts.push(InstSpec::Templated {
            op: OpDirective::Literal(Op::Bne),
            ra: RegDirective::Literal(Reg::dr(1)),
            rb: RegDirective::Literal(Reg::ZERO),
            rc: RegDirective::Literal(Reg::ZERO),
            imm: ImmDirective::Literal(7), // beyond the 2-entry sequence
            uses_lit: false,
            dise_branch: true,
        });
        assert!(matches!(s.validate(), Err(CoreError::BadProduction(_))));
    }

    #[test]
    fn parameterization_accounting() {
        let spec = mfi_spec();
        // srl (T.RS) and T.INSN are parameterized; cmpeq and beq are not.
        assert_eq!(spec.num_parameterized(), 2);
    }

    #[test]
    fn identity_expansion() {
        let id = ReplacementSpec::identity();
        let st = i("stq r1, 0(r2)");
        assert_eq!(id.instantiate_all(&st, 0).unwrap(), vec![st]);
    }

    #[test]
    fn rename_dedicated_registers() {
        let mut spec = mfi_spec();
        spec.insts
            .iter_mut()
            .for_each(|s| s.rename_dedicated(&mut |r| Reg::dr(r.dedicated_num().unwrap() + 8)));
        assert_eq!(spec.dedicated_regs(), vec![Reg::dr(9), Reg::dr(10)]);
    }
}
