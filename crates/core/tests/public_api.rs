//! Public-API integration tests for the DISE engine crate: the paper's
//! figures expressed through the DSL, engine behaviors under unusual
//! production sets, and composition algebra.

use dise_core::{
    compose, dsl, DiseEngine, EngineConfig, Expansion, ImmPredicate, Pattern, ProductionSet,
    ReplacementSpec, RtOrganization,
};
use dise_isa::{Inst, Op, OpClass, Reg};
use std::collections::BTreeMap;

fn drive(engine: &mut DiseEngine, inst: &Inst) -> Expansion {
    loop {
        match engine.inspect(inst) {
            Expansion::Miss { .. } => continue,
            other => return other,
        }
    }
}

#[test]
fn figure_1_through_the_dsl_and_engine() {
    let set = dsl::parse(
        "P1: T.OPCLASS == store -> R1
         P2: T.OPCLASS == load  -> R1
         R1: srl T.RS, #26, $dr1
             cmpeq $dr1, $dr2, $dr1
             beq $dr1, =error
             T.INSN",
        &[("error".to_string(), 0x0400_7000u64)]
            .into_iter()
            .collect::<BTreeMap<_, _>>(),
    )
    .unwrap();
    let mut engine = DiseEngine::with_productions(EngineConfig::default(), set).unwrap();
    // The paper's example: `stq a0, &t0` with the address register in r2.
    let store: Inst = "stq r0, 0(r2)".parse().unwrap();
    let Expansion::Expand { id, len } = drive(&mut engine, &store) else {
        panic!()
    };
    assert_eq!(len, 4);
    let rendered: Vec<String> = (0..len)
        .map(|d| {
            engine
                .fetch_replacement(id, d, &store, 0x0400_1000)
                .unwrap()
                .to_string()
        })
        .collect();
    assert_eq!(
        rendered,
        [
            "srl r2, #26, $dr1".to_string(),
            "cmpeq $dr1, $dr2, $dr1".to_string(),
            format!("beq $dr1, {}", 0x0400_7000i64 - 0x0400_1004),
            "stq r0, 0(r2)".to_string(),
        ]
    );
}

#[test]
fn negative_patterns_via_specificity() {
    // §2.2's example: "all loads that don't use the stack pointer".
    let set = dsl::parse(
        "P1: T.OPCLASS == load -> R1
         P2: T.OPCLASS == load && T.RS == r30 -> R2
         R1: lda $dr4, 1($dr4)
             T.INSN
         R2: T.INSN",
        &BTreeMap::new(),
    )
    .unwrap();
    let mut engine = DiseEngine::with_productions(EngineConfig::default(), set).unwrap();
    let heap_load: Inst = "ldq r1, 0(r7)".parse().unwrap();
    let stack_load: Inst = "ldq r1, 0(r30)".parse().unwrap();
    assert!(matches!(
        drive(&mut engine, &heap_load),
        Expansion::Expand { len: 2, .. }
    ));
    assert!(matches!(
        drive(&mut engine, &stack_load),
        Expansion::Expand { len: 1, .. },
    ));
}

#[test]
fn immediate_attribute_patterns() {
    // "Conditional branches with negative offsets" (§2.1) — count loop
    // back-edges only.
    let set = dsl::parse(
        "P1: T.OPCLASS == cbranch && T.IMM < 0 -> R1
         R1: lda $dr6, 1($dr6)
             T.INSN",
        &BTreeMap::new(),
    )
    .unwrap();
    let mut engine = DiseEngine::with_productions(EngineConfig::default(), set).unwrap();
    let back: Inst = "bne r1, -12".parse().unwrap();
    let fwd: Inst = "bne r1, 12".parse().unwrap();
    assert!(matches!(drive(&mut engine, &back), Expansion::Expand { .. }));
    assert!(matches!(drive(&mut engine, &fwd), Expansion::None));
}

#[test]
fn pt_capacity_evictions_refill_transparently() {
    // More distinct opcode-specific rules than PT entries: the engine must
    // keep producing correct expansions, just with extra PT misses.
    let mut set = ProductionSet::new();
    let ops = [
        Op::Ldq,
        Op::Ldl,
        Op::Stq,
        Op::Stl,
        Op::Addq,
        Op::Subq,
        Op::Mulq,
        Op::And,
    ];
    for op in ops {
        set.add_transparent(
            Pattern::opcode(op),
            ReplacementSpec::new(vec![
                dise_core::InstSpec::Trigger,
                dise_core::InstSpec::Trigger,
            ]),
        )
        .unwrap();
    }
    let config = EngineConfig {
        pt_entries: 2,
        ..EngineConfig::default()
    };
    let mut engine = DiseEngine::with_productions(config, set).unwrap();
    let insts: Vec<Inst> = vec![
        "ldq r1, 0(r2)".parse().unwrap(),
        "stq r1, 0(r2)".parse().unwrap(),
        "addq r1, r2, r3".parse().unwrap(),
        "mulq r1, r2, r3".parse().unwrap(),
    ];
    for round in 0..4 {
        for inst in &insts {
            let e = drive(&mut engine, inst);
            assert!(
                matches!(e, Expansion::Expand { len: 2, .. }),
                "round {round}: {inst} gave {e:?}"
            );
        }
    }
    assert!(
        engine.stats().pt_misses >= 8,
        "tiny PT must thrash: {} misses",
        engine.stats().pt_misses
    );
}

#[test]
fn imm_predicate_display_and_match() {
    let p = Pattern::opclass(OpClass::CondBranch).with_imm(ImmPredicate::NonNegative);
    assert!(p.to_string().contains("T.IMM >= 0"));
    assert!(p.matches(&"beq r1, 0".parse().unwrap()));
    assert!(!p.matches(&"beq r1, -4".parse().unwrap()));
}

#[test]
fn composition_is_associative_for_disjoint_acfs() {
    // Three ACFs on disjoint opcode classes: nesting order must not matter
    // (the sequences never interact).
    let loads = dsl::parse(
        "P1: T.OPCLASS == load -> R1
         R1: lda $dr4, 1($dr4)
             T.INSN",
        &BTreeMap::new(),
    )
    .unwrap();
    let mults = dsl::parse(
        "P1: T.OP == mulq -> R1
         R1: lda $dr5, 1($dr5)
             T.INSN",
        &BTreeMap::new(),
    )
    .unwrap();
    let branches = dsl::parse(
        "P1: T.OPCLASS == cbranch -> R1
         R1: lda $dr6, 1($dr6)
             T.INSN",
        &BTreeMap::new(),
    )
    .unwrap();
    let a = compose::compose_nested(&compose::compose_nested(&loads, &mults).unwrap(), &branches)
        .unwrap();
    let b = compose::compose_nested(&loads, &compose::compose_nested(&mults, &branches).unwrap())
        .unwrap();
    for text in ["ldq r1, 0(r2)", "mulq r1, r2, r3", "bne r1, -4", "stq r1, 0(r2)"] {
        let inst: Inst = text.parse().unwrap();
        let seq_of = |set: &ProductionSet| {
            set.lookup(&inst)
                .map(|id| set.seq(id).unwrap().instantiate_all(&inst, 0x1000).unwrap())
        };
        assert_eq!(seq_of(&a), seq_of(&b), "{text}");
    }
}

#[test]
fn rt_organizations_agree_architecturally() {
    let set = dsl::parse(
        "P1: T.OPCLASS == store -> R1
         R1: srl T.RS, #26, $dr1
             T.INSN",
        &BTreeMap::new(),
    )
    .unwrap();
    let st: Inst = "stq r3, 8(r9)".parse().unwrap();
    let mut outputs = Vec::new();
    for org in [
        RtOrganization::DirectMapped,
        RtOrganization::SetAssociative(2),
        RtOrganization::Perfect,
    ] {
        let config = EngineConfig {
            rt_entries: 4,
            rt_org: org,
            ..EngineConfig::default()
        };
        let mut engine = DiseEngine::with_productions(config, set.clone()).unwrap();
        let Expansion::Expand { id, len } = drive(&mut engine, &st) else {
            panic!()
        };
        let seq: Vec<Inst> = (0..len)
            .map(|d| engine.fetch_replacement(id, d, &st, 0x40).unwrap())
            .collect();
        outputs.push(seq);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}

#[test]
fn dedicated_registers_are_unreachable_from_applications() {
    // No encodable (application) instruction can name a dedicated
    // register: the 5-bit fields cap at r31.
    for word in [0u32, 0xFFFF_FFFF, 0x1234_5678] {
        if let Ok(inst) = Inst::decode(word) {
            assert!(!inst.uses_dedicated());
        }
    }
    // And replacement instructions that do use them cannot be encoded back
    // into the application's text.
    let repl: Inst = "srl r2, #26, $dr1".parse().unwrap();
    assert!(repl.encode().is_err());
    assert!(!Reg::dr(1).is_arch());
}
