//! Binary-rewriting memory fault isolation (the software baseline of
//! Figure 6).
//!
//! Classic segment-matching software fault isolation: the rewriter
//! statically inserts a check sequence before every unsafe instruction
//! (load, store, indirect jump), retargets every branch around the
//! inserted code, and reserves *scavenged* registers for the checks —
//! the paper notes a software implementation needs as many as five
//! dedicated registers plus an extra copy instruction so that a malicious
//! jump into the middle of a check cannot use an unchecked address.
//!
//! Register convention (the synthetic workloads deliberately leave these
//! free; real rewriters must scavenge or spill): `r25` legal code-segment
//! id, `r27` address copy, `r28` scratch, `r29` legal data-segment id.
//!
//! The check sequence before each unsafe instruction is four instructions
//! — the same work as the DISE4 variant, but resident in the static image:
//!
//! ```text
//! bis   rs, rs, r27        ; defensive copy
//! srl   r27, #26, r28      ; extract segment bits
//! cmpeq r28, r29, r28      ; compare with the legal segment
//! beq   r28, mfi_error     ; divert on mismatch
//! <original instruction>
//! ```

use crate::Result;
use dise_isa::reloc::{NewItem, NewTarget, Relocator};
use dise_isa::{Inst, Op, OpClass, Program, Reg};

/// Scavenged register holding the legal code-segment identifier.
pub const CODE_SEGMENT_REG: Reg = Reg::r(25);
/// Scavenged register holding the defensive address copy.
pub const COPY_REG: Reg = Reg::r(27);
/// Scavenged scratch register.
pub const SCRATCH_REG: Reg = Reg::r(28);
/// Scavenged register holding the legal data-segment identifier.
pub const DATA_SEGMENT_REG: Reg = Reg::r(29);

/// Static statistics of a rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Unsafe instructions that received checks.
    pub checked: u64,
    /// Original text size in bytes.
    pub original_text: u64,
    /// Rewritten text size in bytes.
    pub rewritten_text: u64,
}

impl RewriteStats {
    /// Static code growth factor.
    pub fn growth(&self) -> f64 {
        self.rewritten_text as f64 / self.original_text.max(1) as f64
    }
}

/// The rewritten program and its statistics.
#[derive(Debug, Clone)]
pub struct RewriteOutput {
    /// The rewritten program (prologue prepended, error block appended,
    /// branches retargeted).
    pub program: Program,
    /// Static statistics.
    pub stats: RewriteStats,
}

/// The binary-rewriting fault-isolation tool.
///
/// ```
/// use dise_rewrite::RewriteMfi;
/// use dise_isa::{Assembler, Program};
///
/// let p = Assembler::new(Program::segment_base(Program::TEXT_SEGMENT))
///     .assemble("stq r1, 0(r2)\nhalt")
///     .unwrap();
/// let out = RewriteMfi::new().rewrite(&p).unwrap();
/// assert!(out.stats.rewritten_text > p.text_size());
/// assert_eq!(out.stats.checked, 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RewriteMfi {
    skip_ijumps: bool,
}

impl RewriteMfi {
    /// Creates the rewriter.
    pub fn new() -> RewriteMfi {
        RewriteMfi::default()
    }

    /// Disables indirect-jump checking (loads and stores only).
    pub fn without_ijump_checks(mut self) -> RewriteMfi {
        self.skip_ijumps = true;
        self
    }

    /// The four-instruction check sequence for an unsafe instruction whose
    /// address register is `rs`, against the segment id in `segment_reg`.
    ///
    /// `site` rotates the roles of the scavenged copy/scratch registers
    /// and the compare's operand order, approximating the per-site
    /// register-allocation diversity a real rewriter's scavenging
    /// produces. (Uniform check sequences would be unrealistically easy
    /// for an *unparameterized* dictionary compressor to fold.)
    fn check_seq(rs: Reg, segment_reg: Reg, site: u64) -> Vec<NewItem> {
        let (copy, scratch) = if site & 1 == 0 {
            (COPY_REG, SCRATCH_REG)
        } else {
            (SCRATCH_REG, COPY_REG)
        };
        let (cmp_a, cmp_b) = if site & 2 == 0 {
            (scratch, segment_reg)
        } else {
            (segment_reg, scratch)
        };
        vec![
            NewItem::inst(Inst::alu_rr(Op::Bis, rs, rs, copy)),
            NewItem::inst(Inst::alu_ri(
                Op::Srl,
                copy,
                Program::SEGMENT_SHIFT as u8,
                scratch,
            )),
            NewItem::inst(Inst::alu_rr(Op::Cmpeq, cmp_a, cmp_b, scratch)),
            NewItem::branch(
                Inst::branch(Op::Beq, scratch, 0),
                NewTarget::Label("mfi_error".into()),
            ),
        ]
    }

    /// Rewrites `program`: prepends the segment-register prologue, inserts
    /// a check before every unsafe instruction, appends the error block
    /// (symbol `mfi_error`), and retargets all branches.
    ///
    /// # Errors
    ///
    /// Fails on malformed input (undecodable or already-compressed text).
    pub fn rewrite(&self, program: &Program) -> Result<RewriteOutput> {
        let mut r = Relocator::new(program)?;
        let mut checked = 0u64;
        // Prologue: initialize the scavenged segment registers. Attached to
        // the span of the instruction at the program's *entry point* (the
        // entry still maps to the span start, so it runs first).
        let prologue = vec![
            NewItem::inst(Inst::li(
                Program::segment_of(program.data_base) as i16,
                DATA_SEGMENT_REG,
            )),
            NewItem::inst(Inst::li(
                Program::segment_of(program.text_base) as i16,
                CODE_SEGMENT_REG,
            )),
        ];
        let insts: Vec<(u64, Inst)> = r.insts().to_vec();
        for (i, (pc, inst)) in insts.iter().enumerate() {
            let unsafe_mem = inst.op.class().is_mem();
            let unsafe_jump =
                inst.op.class() == OpClass::IndirectJump && !self.skip_ijumps;
            let mut items = if *pc == program.entry {
                prologue.clone()
            } else {
                Vec::new()
            };
            if unsafe_mem || unsafe_jump {
                checked += 1;
                let segment_reg = if unsafe_mem {
                    DATA_SEGMENT_REG
                } else {
                    CODE_SEGMENT_REG
                };
                items.extend(Self::check_seq(
                    inst.rs().expect("memory/jump ops have an address register"),
                    segment_reg,
                    checked,
                ));
            }
            if items.is_empty() {
                r.keep()?;
            } else {
                // Re-append the original instruction (branches keep their
                // retargeting).
                let (pc, inst) = insts[i];
                let original = if inst.op.format() == dise_isa::op::Format::Branch {
                    let old_target = (pc + 4).wrapping_add_signed(inst.imm);
                    NewItem::branch(inst, NewTarget::OldAddr(old_target))
                } else {
                    NewItem::inst(inst)
                };
                items.push(original);
                r.replace(1, items)?;
            }
        }
        // Error block: record the violation and halt.
        r.append_tail(vec![
            NewItem::inst(Inst::li(1, SCRATCH_REG)).with_label("mfi_error"),
            NewItem::inst(Inst::halt()),
        ]);
        let out = r.finish()?;
        let stats = RewriteStats {
            checked,
            original_text: program.text_size(),
            rewritten_text: out.program.text_size(),
        };
        Ok(RewriteOutput {
            program: out.program,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_isa::Assembler;
    use dise_sim::Machine;

    fn asm(listing: &str) -> Program {
        Assembler::new(Program::segment_base(Program::TEXT_SEGMENT))
            .assemble(listing)
            .unwrap()
    }

    #[test]
    fn rewritten_program_is_functionally_identical() {
        let p = asm(
            "       lda r1, 10(r31)
                    lda r9, 0(r31)
             loop:  stq r1, 0(r2)
                    ldq r3, 0(r2)
                    addq r9, r3, r9
                    subq r1, #1, r1
                    bne r1, loop
                    bsr f
                    halt
             f:     lda r4, 7(r31)
                    ret",
        );
        let data = Program::segment_base(Program::DATA_SEGMENT);
        let run = |program: &Program| {
            let mut m = Machine::load(program);
            m.set_reg(Reg::R2, data);
            m.run(100_000).unwrap();
            (m.reg(Reg::r(9)), m.reg(Reg::r(4)))
        };
        let out = RewriteMfi::new().rewrite(&p).unwrap();
        assert_eq!(run(&p), run(&out.program));
        assert_eq!(out.stats.checked, 2 + 1, "stq, ldq, and the ret");
        // Growth: 3 checks × 4 insts + 2 prologue + 2 error block.
        assert_eq!(
            out.stats.rewritten_text,
            out.stats.original_text + 4 * (3 * 4 + 2 + 2)
        );
    }

    #[test]
    fn violations_reach_the_error_block() {
        let p = asm("stq r1, 0(r2)\nlda r7, 1(r31)\nhalt");
        let out = RewriteMfi::new().rewrite(&p).unwrap();
        let mut m = Machine::load(&out.program);
        m.set_reg(Reg::R2, 0xBAD0_0000_0000);
        m.run(10_000).unwrap();
        let err_block = out.program.symbol("mfi_error").unwrap();
        assert!(m.pc().0 >= err_block, "halted inside the error block");
        assert_eq!(m.reg(Reg::r(7)), 0, "code after the store skipped");
        // And the store never happened.
        assert_eq!(m.mem.load_u64(0xBAD0_0000_0000), 0);
    }

    #[test]
    fn legal_accesses_pass() {
        let p = asm("stq r1, 0(r2)\nldq r3, 0(r2)\nhalt");
        let out = RewriteMfi::new().rewrite(&p).unwrap();
        let mut m = Machine::load(&out.program);
        m.set_reg(Reg::R1, 42);
        m.set_reg(Reg::R2, Program::segment_base(Program::DATA_SEGMENT));
        m.run(10_000).unwrap();
        assert_eq!(m.reg(Reg::r(3)), 42);
        let err_block = out.program.symbol("mfi_error").unwrap();
        assert!(m.pc().0 < err_block, "halted before the error block");
    }

    #[test]
    fn ijump_checks_optional() {
        let p = asm("bsr f\nhalt\nf: ret");
        let with = RewriteMfi::new().rewrite(&p).unwrap();
        let without = RewriteMfi::new().without_ijump_checks().rewrite(&p).unwrap();
        assert_eq!(with.stats.checked, 1);
        assert_eq!(without.stats.checked, 0);
        assert!(with.stats.rewritten_text > without.stats.rewritten_text);
    }

    #[test]
    fn growth_factor_reported() {
        let p = asm("stq r1, 0(r2)\nhalt");
        let out = RewriteMfi::new().rewrite(&p).unwrap();
        assert!(out.stats.growth() > 2.0);
    }
}
