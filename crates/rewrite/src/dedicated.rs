//! The dedicated decoder-based decompressor baseline (paper §4.2, \[20\]).
//!
//! A hardware decompressor sitting at decode: 2-byte codewords index an
//! on-chip dictionary of unparameterized instruction sequences, expanded
//! with no cycle cost. The compression algorithm and accounting are shared
//! with [`dise_acf::compress`]; this wrapper packages the baseline's fixed
//! feature set (2-byte codewords, single-instruction compression, 4-byte
//! dictionary entries, no parameterization, no branch compression) and the
//! machine attachment.

use crate::Result;
use dise_acf::compress::{CompressedProgram, CompressionConfig, Compressor};
use dise_isa::Program;

/// The dedicated decompressor toolchain: compressor + on-chip dictionary.
#[derive(Debug, Clone)]
pub struct DedicatedDecompressor {
    compressor: Compressor,
}

impl Default for DedicatedDecompressor {
    fn default() -> DedicatedDecompressor {
        DedicatedDecompressor::new()
    }
}

impl DedicatedDecompressor {
    /// Creates the baseline with its canonical feature set.
    pub fn new() -> DedicatedDecompressor {
        DedicatedDecompressor {
            compressor: Compressor::new(CompressionConfig::dedicated()),
        }
    }

    /// Creates the `−1insn` ablation (no single-instruction compression).
    pub fn without_single_instruction() -> DedicatedDecompressor {
        DedicatedDecompressor {
            compressor: Compressor::new(CompressionConfig::dedicated_no_single()),
        }
    }

    /// Compresses a program for this decompressor.
    ///
    /// # Errors
    ///
    /// Propagates compression errors.
    pub fn compress(&self, program: &Program) -> Result<CompressedProgram> {
        Ok(self.compressor.compress(program)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dise_core::EngineConfig;
    use dise_isa::{Assembler, Reg};
    use dise_sim::Machine;

    #[test]
    fn single_instruction_compression_helps_the_dedicated_baseline() {
        // The same (large-immediate) instruction many times: only
        // single-instruction compression can touch it when instructions
        // alternate.
        let mut listing = String::new();
        for i in 0..12 {
            listing.push_str("lda r1, 999(r31)\n");
            listing.push_str(&format!("lda r{}, {}(r31)\n", 2 + (i % 8), 100 + i * 13));
        }
        listing.push_str("halt");
        let p = Assembler::new(Program::segment_base(Program::TEXT_SEGMENT))
            .assemble(&listing)
            .unwrap();
        let with = DedicatedDecompressor::new().compress(&p).unwrap();
        let without = DedicatedDecompressor::without_single_instruction()
            .compress(&p)
            .unwrap();
        assert!(
            with.stats.compressed_text < without.stats.compressed_text,
            "{} !< {}",
            with.stats.compressed_text,
            without.stats.compressed_text
        );
        // Still runs.
        let mut m = Machine::load(&with.program);
        with.attach(&mut m, EngineConfig::default()).unwrap();
        m.run(10_000).unwrap();
        assert_eq!(m.reg(Reg::R1), 999);
    }
}
