#![warn(missing_docs)]

//! # dise-rewrite: the paper's non-DISE baselines
//!
//! Figure 6 compares DISE memory fault isolation against a **static binary
//! rewriting** implementation; Figure 7 compares DISE decompression against
//! a **dedicated decoder-based decompressor**; Figure 8 composes them. This
//! crate provides both baselines:
//!
//! * [`mfi::RewriteMfi`] — software fault isolation by binary rewriting
//!   (Wahbe et al.-style segment matching, §3.1): every load, store and
//!   indirect jump is preceded by a four-instruction check sequence built
//!   from *scavenged* registers, all branches are retargeted, and a check
//!   prologue/error block is added. Unlike the DISE version, the check
//!   instructions occupy the static image — they consume I-cache capacity
//!   and fetch bandwidth.
//! * [`dedicated`] — the dedicated decompressor model: 2-byte codewords
//!   expanded at decode from an on-chip dictionary with no cycle cost
//!   (mechanics shared with [`dise_acf::compress`]; the decoder itself is
//!   [`dise_sim::DedicatedDict`]).

pub mod dedicated;
pub mod mfi;

pub use dedicated::DedicatedDecompressor;
pub use mfi::{RewriteMfi, RewriteOutput, RewriteStats};

/// Errors produced by the rewriting baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// Underlying ISA error (relocation, encoding).
    Isa(dise_isa::IsaError),
    /// Underlying compression error.
    Acf(dise_acf::AcfError),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Isa(e) => write!(f, "{e}"),
            RewriteError::Acf(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<dise_isa::IsaError> for RewriteError {
    fn from(e: dise_isa::IsaError) -> RewriteError {
        RewriteError::Isa(e)
    }
}

impl From<dise_acf::AcfError> for RewriteError {
    fn from(e: dise_acf::AcfError) -> RewriteError {
        RewriteError::Acf(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, RewriteError>;
